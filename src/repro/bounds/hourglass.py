"""Hourglass pattern: detection (§3) and the tightened bound derivation (§4).

Detection works from the automatically derived projections:

* the statement's *self-update* read (read access structurally equal to its
  write access across the outer loop) yields ``phi_self``; the **temporal**
  dims are those absent from it — the dims the update chain advances along;
* a *broadcast* read whose projection ``phi_b`` contains the temporal dims
  but misses some dims of ``phi_self`` marks the **reduction/broadcast**
  dims (those missing) and the **neutral** dims (``phi_self & phi_b``);
* the hourglass *width* W is the extent of the reduction dims in the
  statement's domain — affine in the temporal dims; its minimum over the
  temporal range must be parametric (otherwise the loop-splitting derivation
  of Theorem 9 applies).

The derivation then follows §4 exactly:

* ``|I'| <= Wmax * prod(K/Wmin over converted projections) * prod(K over the
  rest)`` (Lemma 4 with the added ``phi_i <= Wmax`` projection);
* ``|F| <= e * R * K`` with the flatness bound ``|phi_k(F_j)| <= 2``;
* Theorem 1 with ``K = 2S`` gives the main bound, and ``K = Wmin`` (valid
  when ``S < Wmin`` forces E' empty) gives the small-cache bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..cdag import CDAG, build_cdag
from ..ir import Program
from ..polyhedral import ISet, LinExpr
from ..symbolic import Poly, Rational, Sym, as_rational
from .kpartition import BoundResult
from .projections import Projection, derive_projections

__all__ = [
    "HourglassPattern",
    "HourglassDetectionError",
    "detect_hourglass",
    "verify_hourglass_paths",
    "hourglass_bound",
    "optimal_k_numeric",
    "hourglass_bound_small_cache",
    "hourglass_bound_with_split",
]

S = Sym("S")
K = Sym("K")


class HourglassDetectionError(ValueError):
    """No hourglass pattern (e.g. matmul) or unsupported structure."""


@dataclass
class HourglassPattern:
    """A detected hourglass on one statement."""

    stmt: str
    temporal: tuple[str, ...]
    reduction: tuple[str, ...]
    neutral: tuple[str, ...]
    #: symbolic lower bound on the width over the temporal range (W_min)
    width_min: Poly
    #: symbolic upper bound on |phi_i(domain)| (W_max)
    width_max: Poly
    #: True when width_min grows with the parameters (§3.2's "large width")
    parametric_width: bool
    #: read-access arrays: the self-update chain and the broadcast value
    self_via: str = ""
    broadcast_via: str = ""

    def __repr__(self) -> str:
        return (
            f"Hourglass({self.stmt}: temporal={self.temporal},"
            f" reduction={self.reduction}, neutral={self.neutral},"
            f" Wmin={self.width_min!r}, Wmax={self.width_max!r},"
            f" parametric={self.parametric_width})"
        )


# ---------------------------------------------------------------------------
# symbolic extent helpers
# ---------------------------------------------------------------------------


def _lin_to_poly(e: LinExpr) -> Poly:
    out = Poly.const(e.const)
    for v, c in e.coeffs.items():
        out = out + Sym(v) * c
    return out


def _bounds_of(dom: ISet, dim: str, sample: Mapping[str, int]):
    """Symbolic (lo, hi) of ``dim`` in ``dom`` after eliminating the other
    dims; binding candidates are chosen numerically at ``sample``."""
    shadow = dom
    for d in reversed(dom.dims):
        if d != dim:
            shadow = shadow.eliminate(d)
    los, his = [], []
    for c in shadow.constraints:
        a = c.expr.coeff(dim)
        if a == 0:
            continue
        rest = c.expr - LinExpr({dim: a})
        bound = rest * (Fraction(-1) / a)
        (los if a > 0 else his).append(bound)
    if not los or not his:
        raise HourglassDetectionError(f"dimension {dim} unbounded in {dom!r}")

    def pick(cands, want_max: bool):
        vals = [float(b.eval(sample)) for b in cands]
        idx = vals.index(max(vals) if want_max else min(vals))
        return cands[idx]

    return pick(los, want_max=True), pick(his, want_max=False)


def _extent_poly(lo: LinExpr, hi: LinExpr) -> Poly:
    return _lin_to_poly(hi) - _lin_to_poly(lo) + 1


def _width_extrema(
    dom: ISet,
    reduction: Sequence[str],
    temporal: Sequence[str],
    sample: Mapping[str, int],
) -> tuple[Poly, Poly]:
    """(W_min, W_max): the product of reduction-dim extents, minimised /
    maximised over the temporal range (corner evaluation — extents are affine
    in the temporal dims)."""
    # per-reduction-dim slice extents (affine in temporal dims + params)
    widths: list[Poly] = []
    for a in reduction:
        lo_a, hi_a = None, None
        for c in dom.constraints:
            ca = c.expr.coeff(a)
            if ca == 0:
                continue
            bad = [
                d
                for d in c.expr.variables()
                if d != a and d in dom.dims and d not in temporal
            ]
            if bad:
                raise HourglassDetectionError(
                    f"reduction dim {a} bounded by non-temporal dims {bad}"
                )
            rest = c.expr - LinExpr({a: ca})
            bound = rest * (Fraction(-1) / ca)
            if ca > 0:
                if lo_a is not None and lo_a != bound:
                    raise HourglassDetectionError(
                        f"reduction dim {a} has multiple lower bounds"
                        f" ({lo_a!r} vs {bound!r}); width extraction needs a"
                        f" single binding constraint"
                    )
                lo_a = bound
            else:
                if hi_a is not None and hi_a != bound:
                    raise HourglassDetectionError(
                        f"reduction dim {a} has multiple upper bounds"
                        f" ({hi_a!r} vs {bound!r})"
                    )
                hi_a = bound
        if lo_a is None or hi_a is None:
            raise HourglassDetectionError(f"reduction dim {a} unbounded")
        widths.append(_extent_poly(lo_a, hi_a))
    width = Poly.const(1)
    for w in widths:
        width = width * w

    # corner-evaluate over the temporal box
    corners: list[dict[str, Poly]] = [{}]
    for t in temporal:
        lo_t, hi_t = _bounds_of(dom, t, sample)
        new = []
        for c in corners:
            for b in (lo_t, hi_t):
                cc = dict(c)
                cc[t] = _lin_to_poly(b)
                new.append(cc)
        corners = new
    cand = [width.subs(c) for c in corners]
    vals = [float(p.eval(sample)) for p in cand]
    w_min = cand[vals.index(min(vals))]
    w_max = cand[vals.index(max(vals))]
    # global extent of the reduction dims also caps W_max
    glob = Poly.const(1)
    for a in reduction:
        lo_g, hi_g = _bounds_of(dom, a, sample)
        glob = glob * _extent_poly(lo_g, hi_g)
    if float(glob.eval(sample)) < float(w_max.eval(sample)):
        w_max = glob
    return w_min, w_max


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


def detect_hourglass(
    program: Program,
    stmt_name: str,
    small_params: Mapping[str, int],
    sample_params: Mapping[str, int],
    projections: Sequence[Projection] | None = None,
) -> HourglassPattern:
    """Detect the hourglass pattern on ``stmt_name`` (§3.2's three properties).

    ``small_params`` drive the dataflow-based projection derivation;
    ``sample_params`` (large values) resolve numeric tie-breaks and the
    parametric-width test.  Raises :class:`HourglassDetectionError` when the
    statement has no hourglass (the classical bound then applies).
    """
    stmt = program.statement(stmt_name)
    dims = stmt.dims
    if projections is None:
        projections = derive_projections(program, stmt_name, small_params)

    if len(stmt.writes) != 1:
        raise HourglassDetectionError(f"{stmt_name}: need exactly one write")
    waccess = stmt.writes[0]
    self_slots = [
        idx
        for idx, r in enumerate(stmt.reads)
        if r.array == waccess.array and r.indices == waccess.indices
    ]
    if not self_slots:
        raise HourglassDetectionError(
            f"{stmt_name}: no self-update read (no temporal chain)"
        )
    self_access = stmt.reads[self_slots[0]]
    via_self = self_access.array
    # the self-update chain's value class is addressed by the access itself
    # (its origin — an input element or a chain-head instance — carries the
    # same index function), so phi_self is exactly the access's dims; do NOT
    # look it up by array name: other reads of the same array (A[i][k] in
    # GEBD2/A2V) would alias
    phi_self = self_access.dims_used(dims)
    if not phi_self:
        raise HourglassDetectionError(
            f"{stmt_name}: self-update read uses no dims"
        )
    temporal = tuple(d for d in dims if d not in phi_self)
    if not temporal:
        raise HourglassDetectionError(
            f"{stmt_name}: self-update chain does not advance any dim"
        )

    # broadcast candidates: projections containing the temporal dims but
    # missing some dims of phi_self.  Several reads can look like broadcasts
    # (MGS broadcasts Q over j *and* R over i); only the one whose
    # reduction->broadcast cycle actually connects consecutive temporal
    # slices of SX satisfies §3.2's path property, so each candidate is
    # verified on the concrete CDAG.
    candidates = []
    for p in projections:
        if p.dims == phi_self:
            continue
        if not set(temporal) <= p.dims:
            continue
        missing = [d for d in dims if d not in p.dims]
        if missing and set(missing) <= phi_self:
            candidates.append(p)
    if not candidates:
        raise HourglassDetectionError(
            f"{stmt_name}: no reduction/broadcast value found"
        )

    dom = stmt.domain()
    g = build_cdag(program, small_params)
    verified: list[HourglassPattern] = []
    for broadcast in candidates:
        reduction = tuple(d for d in dims if d not in broadcast.dims)
        neutral = tuple(d for d in dims if d in phi_self and d in broadcast.dims)
        if set(temporal) | set(reduction) | set(neutral) != set(dims):
            continue
        try:
            w_min, w_max = _width_extrema(dom, reduction, temporal, sample_params)
        except HourglassDetectionError:
            continue
        # §3.2's "large width": W_min must not be bounded by a constant
        v1 = float(w_min.eval(sample_params))
        bigger = {k: v * 4 for k, v in sample_params.items()}
        v2 = float(w_min.eval(bigger))
        parametric = v2 > 2.0 * v1 and v1 > 2.0
        pat = HourglassPattern(
            stmt=stmt_name,
            temporal=temporal,
            reduction=reduction,
            neutral=neutral,
            width_min=w_min,
            width_max=w_max,
            parametric_width=parametric,
            self_via=via_self,
            broadcast_via=broadcast.via,
        )
        if verify_hourglass_paths(program, pat, small_params, g):
            verified.append(pat)
    if not verified:
        raise HourglassDetectionError(
            f"{stmt_name}: no candidate satisfies the dependence-path property"
        )
    # prefer a parametric-width pattern (usable without loop splitting)
    for pat in verified:
        if pat.parametric_width:
            return pat
    return verified[0]


def verify_hourglass_paths(
    program: Program,
    pattern: HourglassPattern,
    params: Mapping[str, int],
    g: CDAG | None = None,
    max_pairs: int = 400,
) -> bool:
    """Concretely verify §3.2's path property on a small CDAG: between any
    SX[k, j, i] and SX[k+1, j, i'] there is a dependence chain."""
    if g is None:
        g = build_cdag(program, params)
    stmt = program.statement(pattern.stmt)
    dims = stmt.dims
    t_idx = [dims.index(d) for d in pattern.temporal]
    n_idx = [dims.index(d) for d in pattern.neutral]
    pts = list(stmt.domain().points(params))
    # group instances by (temporal, neutral) class
    groups: dict[tuple, list] = {}
    for p in pts:
        keyt = tuple(p[x] for x in t_idx)
        keyn = tuple(p[x] for x in n_idx)
        groups.setdefault((keyt, keyn), []).append(p)
    # consecutive temporal values per neutral class
    by_neutral: dict[tuple, list] = {}
    for (kt, kn) in groups:
        by_neutral.setdefault(kn, []).append(kt)
    # the temporal loop may run forwards (MGS) or backwards (V2Q); the chain
    # property must hold uniformly in the dataflow direction
    checked = 0
    direction = 0  # +1: increasing temporal, -1: decreasing, 0: unknown
    for kn, kts in by_neutral.items():
        kts.sort()
        for a, b in zip(kts, kts[1:]):
            src_pts = groups[(a, kn)]
            dst_pts = groups[(b, kn)]
            for sp in src_pts:
                for dp in dst_pts:
                    if checked >= max_pairs:
                        return True
                    checked += 1
                    u, v = (pattern.stmt, sp), (pattern.stmt, dp)
                    fwd = g.has_path(u, v)
                    bwd = g.has_path(v, u)
                    if direction == 0:
                        if fwd:
                            direction = 1
                        elif bwd:
                            direction = -1
                        else:
                            return False
                    if direction == 1 and not fwd:
                        return False
                    if direction == -1 and not bwd:
                        return False
    return checked > 0


# ---------------------------------------------------------------------------
# derivation
# ---------------------------------------------------------------------------


def _i_prime_bound(
    pattern: HourglassPattern,
    projections: Sequence[Projection],
) -> tuple[Rational, list[dict]]:
    """|I'|(K) via §4.2: phi_i <= Wmax; projections sharing reduction dims
    become K/Wmin on their non-reduction part; remaining dims cost K each.

    Returns the symbolic bound plus the lemma-application trail (one dict
    per factor, with the projection it instantiates and the dims it newly
    covers) that :mod:`repro.cert` serializes for independent replay.
    """
    w_min = as_rational(pattern.width_min)
    w_max = as_rational(pattern.width_max)
    k = as_rational(K)
    covered: set[str] = set(pattern.reduction)
    u = w_max
    steps: list[dict] = [
        {
            "lemma": "lemma4-width-cap",
            "factor": "Wmax",
            "covers": sorted(pattern.reduction),
        }
    ]
    # converted projections (Lemma 4): cover their non-reduction dims at K/Wmin
    for p in projections:
        shared = set(p.dims) & set(pattern.reduction)
        rest = set(p.dims) - set(pattern.reduction)
        if shared and rest and not rest <= covered:
            u = u * (k / w_min)
            steps.append(
                {
                    "lemma": "lemma4-converted-projection",
                    "factor": "K/Wmin",
                    "projection": sorted(p.dims),
                    "covers": sorted(rest - covered),
                }
            )
            covered |= rest
    # any dim still uncovered costs a full K via an original projection
    remaining = [d for d in pattern.temporal + pattern.neutral if d not in covered]
    while remaining:
        best = None
        for p in projections:
            gain = set(p.dims) & set(remaining)
            if gain and (best is None or len(gain) > len(best[1])):
                best = (p, gain)
        if best is None:
            raise HourglassDetectionError(
                f"dims {remaining} not covered by any projection"
            )
        u = u * k
        steps.append(
            {
                "lemma": "projection-cap",
                "factor": "K",
                "projection": sorted(best[0].dims),
                "covers": sorted(best[1]),
            }
        )
        remaining = [d for d in remaining if d not in best[1]]
    return u, steps


def _f_bound_factors(
    pattern: HourglassPattern,
    projections: Sequence[Projection],
) -> tuple[Rational, Rational, list[dict]]:
    """(e, R, steps) of §4.3: |F| <= e * R * K.

    e collects the flatness factor 2 (for the temporal dims) and a K for
    every dim not covered by the chosen phi_w; R counts the neutral values
    phi_w fails to separate (1 for all the paper's kernels).  ``steps`` is
    the lemma trail for the certificate, mirroring :func:`_i_prime_bound`.
    """
    # choose phi_w: must contain some neutral dims; prefer max coverage of
    # neutral + reduction
    best = None
    for p in projections:
        cov_n = set(p.dims) & set(pattern.neutral)
        if not cov_n and pattern.neutral:
            continue
        cov = len(set(p.dims) & (set(pattern.neutral) | set(pattern.reduction)))
        if best is None or cov > best[1]:
            best = (p, cov)
    if best is None:
        raise HourglassDetectionError("no projection usable as phi_w")
    phi_w = best[0]
    e: Rational = as_rational(2)
    steps: list[dict] = [
        {"lemma": "flatness", "factor": "2", "phi_w": sorted(phi_w.dims)}
    ]
    # dims of the slice not covered by flatness (temporal) or phi_w
    uncovered = [
        d
        for d in pattern.reduction + pattern.neutral
        if d not in phi_w.dims
    ]
    for d in uncovered:
        e = e * as_rational(K)
        steps.append({"lemma": "uncovered-slice-dim", "factor": "K", "dim": d})
    # R: neutral dims phi_w misses would multiply the K budget
    r: Rational = as_rational(1)
    missed_neutral = [d for d in pattern.neutral if d not in phi_w.dims]
    if missed_neutral:
        # conservative: each missed neutral dim contributes its full range
        raise HourglassDetectionError(
            f"phi_w misses neutral dims {missed_neutral}; R > 1 unsupported"
        )
    return e, r, steps


def hourglass_bound(
    kernel_name: str,
    pattern: HourglassPattern,
    projections: Sequence[Projection],
    v_count: Poly,
    *,
    k_mult: int = 2,
) -> BoundResult:
    """The main hourglass bound with K = k_mult * S (paper: K = 2S).

    ``Q >= (K - S) * |V| / (U_I(K) + e*R*K)``, all symbolic and exact.
    """
    if not pattern.parametric_width:
        raise HourglassDetectionError(
            f"{pattern.stmt}: width is not parametric; use the split derivation"
        )
    u_i, i_steps = _i_prime_bound(pattern, projections)
    e, r, f_steps = _f_bound_factors(pattern, projections)
    e_size = u_i + e * r * as_rational(K)
    q = (as_rational(K) - as_rational(S)) * as_rational(v_count) / e_size
    q = q.subs({"K": Poly.const(k_mult) * S})
    witness = {
        "kind": "hourglass",
        "width_min": pattern.width_min,
        "width_max": pattern.width_max,
        "v_count": v_count,
        "lemmas": i_steps
        + f_steps
        + [{"lemma": "theorem1", "k_choice": f"{k_mult}*S", "k_mult": k_mult}],
    }
    return BoundResult(
        kernel=kernel_name,
        method="hourglass",
        expr=q,
        coeff=1.0,
        k_choice=f"K = {k_mult}S",
        notes=(
            f"temporal={pattern.temporal} reduction={pattern.reduction}"
            f" neutral={pattern.neutral} Wmin={pattern.width_min!r}"
            f" Wmax={pattern.width_max!r}"
        ),
        witness=witness,
    )


def optimal_k_numeric(
    pattern: HourglassPattern,
    projections: Sequence[Projection],
    v_count: Poly,
    env: Mapping[str, int],
) -> tuple[float, float]:
    """Numerically maximise ``Q(K) = (K-S) |V| / (U_I(K) + eRK)`` over K.

    Returns ``(K*, Q(K*))``.  For the common quadratic case
    ``|E|(K) = a K^2 + b K`` the optimum has the closed form
    ``K* = S + sqrt(S^2 + bS/a)`` — with ``a = Wmax/Wmin^2`` and ``b = eR``
    that is ``S + sqrt(S^2 + eR * S * Wmin^2 / Wmax)``, which explains why
    the paper's K = 2S drifts from the optimum when ``S << Wmin`` (for MGS:
    K* = S + sqrt(S^2 + 2SM), about ``sqrt(2SM)`` >> 2S for S << M).
    The numeric search below is exact for any U_I shape.
    """
    u_i, _ = _i_prime_bound(pattern, projections)
    e, r, _ = _f_bound_factors(pattern, projections)
    e_size = u_i + e * r * as_rational(K)
    v = float(v_count.eval(env))
    s = env["S"]

    def q(k: float) -> float:
        env_k = dict(env)
        env_k["K"] = int(round(k))
        denom = float(e_size.eval(env_k))
        if denom <= 0:
            return 0.0
        return (env_k["K"] - s) * v / denom

    # golden-section over [S+1, 64S] (unimodal for these rational shapes)
    lo, hi = s + 1.0, 64.0 * s
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a_pt, b_pt = hi - phi * (hi - lo), lo + phi * (hi - lo)
    fa, fb = q(a_pt), q(b_pt)
    for _ in range(80):
        if fa < fb:
            lo, a_pt, fa = a_pt, b_pt, fb
            b_pt = lo + phi * (hi - lo)
            fb = q(b_pt)
        else:
            hi, b_pt, fb = b_pt, a_pt, fa
            a_pt = hi - phi * (hi - lo)
            fa = q(a_pt)
    k_star = (lo + hi) / 2.0
    return k_star, q(k_star)


def hourglass_bound_small_cache(
    kernel_name: str,
    pattern: HourglassPattern,
    projections: Sequence[Projection],
    v_count: Poly,
) -> BoundResult:
    """The small-cache bound (Theorem 5's second part): when S < Wmin every
    (K=Wmin)-bounded set has empty E', so |E| <= e*R*K and
    ``Q >= (Wmin - S) * |V| / (e * R * Wmin)``."""
    e, r, f_steps = _f_bound_factors(pattern, projections)
    w = as_rational(pattern.width_min)
    q = (w - as_rational(S)) * as_rational(v_count) / (e * r * w)
    witness = {
        "kind": "hourglass-small-cache",
        "width_min": pattern.width_min,
        "width_max": pattern.width_max,
        "v_count": v_count,
        "lemmas": f_steps
        + [{"lemma": "theorem5-small-cache", "k_choice": "Wmin"}],
    }
    return BoundResult(
        kernel=kernel_name,
        method="hourglass-small-cache",
        expr=q,
        coeff=1.0,
        k_choice="K = Wmin",
        condition=f"S < Wmin = {pattern.width_min!r}",
        notes="E' empty because |InSet(E')| > Wmin >= K",
        witness=witness,
    )


def hourglass_bound_with_split(
    kernel_name: str,
    program: Program,
    pattern: HourglassPattern,
    projections: Sequence[Projection],
    split_dim: str,
    split_at: Poly,
    sample_params: Mapping[str, int],
    *,
    k_mult: int = 2,
) -> BoundResult:
    """Theorem 9's loop-splitting derivation for shrinking-width hourglasses.

    The temporal loop ``split_dim`` is split at ``split_at``; the first part
    (iterations < split_at) keeps a parametric width and gets the hourglass
    bound; the second part's (classical) bound is dropped — splitting never
    invalidates a lower bound on the first part.
    """
    stmt = program.statement(pattern.stmt)
    if split_dim not in pattern.temporal:
        raise HourglassDetectionError(f"{split_dim} is not a temporal dim")

    # Wmin of part 1: width at the last kept iteration split_at - 1
    dom = stmt.domain()
    w_min1, _ = _width_extrema(dom, pattern.reduction, pattern.temporal, sample_params)
    # recompute width as a function of the split point: substitute the
    # temporal dim with (split_at - 1) in the slice width
    widths = _slice_width(dom, pattern.reduction, pattern.temporal)
    w_at_split = widths.subs({split_dim: split_at - 1})

    # |V| of part 1: resum the instance count with the split dim capped
    v1 = _count_with_cap(stmt, split_dim, split_at)

    pat1 = HourglassPattern(
        stmt=pattern.stmt,
        temporal=pattern.temporal,
        reduction=pattern.reduction,
        neutral=pattern.neutral,
        width_min=w_at_split,
        width_max=pattern.width_max,
        parametric_width=True,
        self_via=pattern.self_via,
        broadcast_via=pattern.broadcast_via,
    )
    res = hourglass_bound(kernel_name, pat1, projections, v1, k_mult=k_mult)
    res.method = "hourglass-split"
    res.notes += f" split {split_dim} at {split_at!r}"
    res.witness["kind"] = "hourglass-split"
    res.witness["split"] = {"dim": split_dim, "at": split_at}
    return res


def _slice_width(
    dom: ISet, reduction: Sequence[str], temporal: Sequence[str]
) -> Poly:
    """Product of reduction-dim extents as a polynomial in the temporal dims."""
    width = Poly.const(1)
    for a in reduction:
        lo_a = hi_a = None
        for c in dom.constraints:
            ca = c.expr.coeff(a)
            if ca == 0:
                continue
            rest = c.expr - LinExpr({a: ca})
            bound = rest * (Fraction(-1) / ca)
            if ca > 0:
                lo_a = bound
            else:
                hi_a = bound
        width = width * _extent_poly(lo_a, hi_a)
    return width


def _count_with_cap(stmt, split_dim: str, split_at: Poly) -> Poly:
    """Symbolic instance count with ``split_dim < split_at``."""
    from ..symbolic import sum_poly
    from ..polyhedral import linexpr_to_poly, aff

    acc = Poly.const(1)
    for v, lo, hi in reversed(stmt.loops):
        lo_p = linexpr_to_poly(aff(lo))
        hi_p = linexpr_to_poly(aff(hi))
        if v == split_dim:
            hi_p = split_at - 1
        acc = sum_poly(acc, v, lo_p, hi_p)
    return acc
