"""repro.cert — machine-checkable bound certificates (``iolb-cert/1``).

Every derivation the engine performs is built from auditable ingredients:
the dependence projections, the Brascamp–Lieb LP witness vector, the
hourglass decomposition (temporal/reduction/neutral dims and the width W),
and a chain of lemma applications with concrete instantiations.  This
package turns a :class:`~repro.bounds.DerivationReport` into a versioned
proof object and re-checks it with code that deliberately shares nothing
with the derivation:

* :mod:`repro.cert.emit` — :func:`build_certificate` serializes the
  report (projections, witnesses, lemma trails, exact expressions) into
  the ``iolb-cert/1`` JSON document; :func:`certificate_json` is the
  canonical byte-stable rendering pinned by the golden tests;
* :mod:`repro.cert.check` — :func:`check_certificate`, the *independent*
  checker: its own tiny exact rational arithmetic, its own domain
  enumerator, and an inequality replay of every lemma application.  It
  imports nothing from :mod:`repro.bounds`, :mod:`repro.polyhedral`,
  :mod:`repro.symbolic` or :mod:`repro.ir` (a test pins this at the AST
  level), so a bug in the derivation engine cannot silently vouch for
  itself.  Results come back as an ``iolb-cert-report/1`` with
  severity-gated findings (``iolb cert check`` exits 0/1/2).

Surfaced as ``iolb derive --cert``, the ``cert`` field of the serve
``derive`` response, ``iolb cert check``, the ``cert-roundtrip`` verify
oracle, and selfcheck's tenth check.  See docs/CERTIFICATES.md.
"""

from .check import (
    REPORT_SCHEMA,
    CertCheckReport,
    Finding,
    check_certificate,
)
from .emit import CERT_SCHEMA, build_certificate, certificate_json

__all__ = [
    "CERT_SCHEMA",
    "REPORT_SCHEMA",
    "build_certificate",
    "certificate_json",
    "check_certificate",
    "CertCheckReport",
    "Finding",
]
