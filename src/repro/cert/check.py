"""The independent certificate checker (``iolb-cert-report/1``).

This module re-verifies an ``iolb-cert/1`` document **without** the
derivation engine: it has its own exact polynomial arithmetic (monomials
as sorted ``(symbol, exponent)`` tuples over :class:`fractions.Fraction`),
its own iteration-domain enumerator, and replays every lemma application
from the certificate's own data.  It imports nothing from
:mod:`repro.bounds`, :mod:`repro.polyhedral`, :mod:`repro.symbolic` or
:mod:`repro.ir` — only the standard library and :mod:`repro.obs` — so a
bug in the derivation cannot leak into its own audit.  A test pins this
import discipline at the AST level.

What is checked (reason codes; ``error`` findings gate exit code 2,
``warning`` 1):

==== =========================================================
C001 malformed certificate (structure, types, unparsable values)
C002 unknown certificate schema
C003 engine version mismatch (warning)
C010 projection not grounded in the statement's dimensions
C011 witness projections/dims inconsistent with the certificate
C020 BL witness arity or exponent-range violation
C021 BL witness does not cover some dimension (sum s_j < 1)
C022 sigma does not equal the sum of the exponents
C023 classical coefficient does not replay
C024 classical bound expression does not replay
C030 hourglass dims are not a partition of the statement dims
C031 lemma-chain bookkeeping broken (coverage, phi_w, bindings)
C032 bound expression does not match the lemma-chain replay
C033 split bound missing its split instantiation
C034 split instance count does not replay numerically
C040 width claims refuted on the enumerated domain (or, above
     the cap, by the symbolic width replay)
C041 symbolic instance count disagrees with enumeration (or,
     above the cap, with the Faulhaber-summed closed form)
C042 domain exceeds the enumeration cap *and* is outside the
     symbolic-replay fragment (warning; replays skipped)
C043 split point not integral at the certified parameters
     (warning; split replay skipped)
C050 claimed instance count differs from the symbolic replay
     polynomial but agrees at sampled parameters (warning)
C051 symbolic width replay undecided (warning)
C052 split replay skipped above the enumeration cap (warning)
==== =========================================================

Symbolic equalities are decided by cross-multiplication of exact term
lists, which is invariant under whatever normalization the engine's
rational arithmetic applies — the checker never reimplements it.

Domains larger than :data:`ENUM_CAP` points are no longer skipped
outright: when the domain is a unit-coefficient loop nest (one lower and
one upper bound per dimension, innermost coefficient ±1 — the shape every
certified statement domain has), the instance count is recomputed exactly
by iterated Faulhaber summation and the hourglass widths by counting the
reduction sub-nest, with no enumeration at all.  Only domains outside
that fragment fall back to the C042 skip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from .. import obs

__all__ = ["REPORT_SCHEMA", "Finding", "CertCheckReport", "check_certificate"]

REPORT_SCHEMA = "iolb-cert-report/1"

#: schema this checker understands (redeclared on purpose — importing it
#: from :mod:`repro.cert.emit` would let an emitter typo vouch for itself)
_CERT_SCHEMA = "iolb-cert/1"

#: largest iteration domain the numeric replays will enumerate
ENUM_CAP = 20000

#: concrete cache sizes tried when a split instantiation references S
_SPLIT_S_TRIALS = (1, 2, 3)


class _Bad(Exception):
    """Structural problem with the certificate (reported as C001)."""


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    """One checker finding: a reason code, severity and location."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    where: str = ""

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
        }


@dataclass
class CertCheckReport:
    """Outcome of one :func:`check_certificate` run."""

    kernel: str = ""
    findings: list[Finding] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)

    def add(self, code: str, severity: str, message: str, where: str = ""):
        self.findings.append(Finding(code, severity, message, where))

    def ran(self, name: str):
        self.checks_run.append(name)

    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def exit_code(self) -> int:
        if any(f.severity == "error" for f in self.findings):
            return 2
        if any(f.severity == "warning" for f in self.findings):
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "kernel": self.kernel,
            "ok": self.ok(),
            "exit_code": self.exit_code(),
            "checks_run": list(self.checks_run),
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        lines = [
            f"certificate check: {self.kernel or '<unknown>'} — "
            + ("OK" if self.ok() else "REJECTED")
        ]
        lines.append(f"  checks run: {', '.join(self.checks_run) or 'none'}")
        for f in self.findings:
            loc = f" at {f.where}" if f.where else ""
            lines.append(f"  [{f.code}] {f.severity}{loc}: {f.message}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the checker's own polynomial arithmetic
#
# A polynomial is ``dict[monomial, Fraction]`` with ``monomial`` a sorted
# tuple of ``(symbol, exponent)`` pairs, zero exponents and zero
# coefficients dropped.  Exponents are Fractions (the classical bound's
# S**(1-sigma) can be fractional and negative); numeric evaluation
# requires integer exponents and reports anything else as malformed.
# ---------------------------------------------------------------------------


def _frac(s, what: str) -> Fraction:
    try:
        return Fraction(str(s))
    except (ValueError, ZeroDivisionError) as e:
        raise _Bad(f"{what}: bad rational {s!r} ({e})") from None


def _pconst(c) -> dict:
    c = Fraction(c)
    return {(): c} if c else {}


def _psym(name: str) -> dict:
    return {((name, Fraction(1)),): Fraction(1)}


def _padd(a: dict, b: dict) -> dict:
    out = dict(a)
    for m, c in b.items():
        c2 = out.get(m, Fraction(0)) + c
        if c2:
            out[m] = c2
        else:
            out.pop(m, None)
    return out


def _pneg(a: dict) -> dict:
    return {m: -c for m, c in a.items()}


def _psub(a: dict, b: dict) -> dict:
    return _padd(a, _pneg(b))


def _mmul(m1: tuple, m2: tuple) -> tuple:
    exps: dict[str, Fraction] = {}
    for s, x in m1:
        exps[s] = exps.get(s, Fraction(0)) + x
    for s, x in m2:
        exps[s] = exps.get(s, Fraction(0)) + x
    return tuple(sorted((s, x) for s, x in exps.items() if x))


def _pmul(a: dict, b: dict) -> dict:
    out: dict = {}
    for m1, c1 in a.items():
        for m2, c2 in b.items():
            m = _mmul(m1, m2)
            c = out.get(m, Fraction(0)) + c1 * c2
            if c:
                out[m] = c
            else:
                out.pop(m, None)
    return out


def _ppow(a: dict, n: int) -> dict:
    out = _pconst(1)
    for _ in range(n):
        out = _pmul(out, a)
    return out


def _peq(a: dict, b: dict) -> bool:
    return a == b


def _psubs(a: dict, sym: str, repl: dict) -> dict:
    """Substitute ``sym`` (non-negative integer exponents only) by ``repl``."""
    out: dict = {}
    for m, c in a.items():
        exp = Fraction(0)
        rest = []
        for s, x in m:
            if s == sym:
                exp = x
            else:
                rest.append((s, x))
        if exp.denominator != 1 or exp < 0:
            raise _Bad(f"cannot substitute {sym}^{exp} (non-integer power)")
        term = _pmul({tuple(rest): c}, _ppow(repl, int(exp)))
        out = _padd(out, term)
    return out


def _peval(a: dict, env: Mapping[str, int], what: str) -> Fraction:
    total = Fraction(0)
    for m, c in a.items():
        val = c
        for s, x in m:
            if s not in env:
                raise _Bad(f"{what}: unbound symbol {s!r}")
            if x.denominator != 1:
                raise _Bad(f"{what}: non-integer exponent {s}^{x}")
            base = Fraction(env[s])
            if base == 0 and x < 0:
                raise _Bad(f"{what}: 0**{x}")
            val *= base ** int(x)
        total += val
    return total


def _pparse(terms, what: str) -> dict:
    """Parse the emitter's ``[[[sym, exp], ...], coeff]`` term list."""
    if not isinstance(terms, list):
        raise _Bad(f"{what}: term list expected, got {type(terms).__name__}")
    out: dict = {}
    for t in terms:
        if (
            not isinstance(t, list)
            or len(t) != 2
            or not isinstance(t[0], list)
        ):
            raise _Bad(f"{what}: bad term {t!r}")
        mono, coeff = t
        pairs = []
        for pair in mono:
            if not isinstance(pair, list) or len(pair) != 2:
                raise _Bad(f"{what}: bad monomial entry {pair!r}")
            sym, exp = pair
            if not isinstance(sym, str):
                raise _Bad(f"{what}: bad symbol {sym!r}")
            x = _frac(exp, what)
            if x:
                pairs.append((sym, x))
        m = tuple(sorted(pairs))
        c = _frac(coeff, what)
        if not c:
            continue
        if m in out:
            raise _Bad(f"{what}: duplicate monomial {m!r}")
        out[m] = c
    return out


# ---------------------------------------------------------------------------
# structural accessors
# ---------------------------------------------------------------------------


def _get(d, key: str, typ, what: str):
    if not isinstance(d, dict):
        raise _Bad(f"{what}: object expected")
    if key not in d:
        raise _Bad(f"{what}: missing field {key!r}")
    v = d[key]
    if typ is not None and not isinstance(v, typ):
        raise _Bad(
            f"{what}.{key}: expected {getattr(typ, '__name__', typ)},"
            f" got {type(v).__name__}"
        )
    return v


def _strlist(v, what: str) -> list[str]:
    if not isinstance(v, list) or not all(isinstance(x, str) for x in v):
        raise _Bad(f"{what}: list of strings expected")
    return v


# ---------------------------------------------------------------------------
# the checker's own domain enumerator
# ---------------------------------------------------------------------------


class _CapExceeded(Exception):
    pass


def _parse_domain(domain, what: str):
    dims = _strlist(_get(domain, "dims", list, what), f"{what}.dims")
    cons = []
    for i, c in enumerate(_get(domain, "constraints", list, what)):
        cw = f"{what}.constraints[{i}]"
        expr = _get(c, "expr", dict, cw)
        kind = _get(c, "kind", str, cw)
        if kind not in (">=", "=="):
            raise _Bad(f"{cw}: bad kind {kind!r}")
        coeffs = {
            v: _frac(x, cw)
            for v, x in _get(expr, "coeffs", dict, cw).items()
        }
        const = _frac(_get(expr, "const", None, cw), cw)
        cons.append((coeffs, const, kind))
    return dims, cons


def _enum_points(dims, cons, params: Mapping[str, int], cap: int):
    """All integer points of the constraint system, dims in loop order.

    Bound extraction is level-by-level: a constraint bounds ``dims[k]``
    once every other variable it mentions is already fixed — exactly the
    loop-nest shape certified domains have (outer bounds first).
    """

    def holds(coeffs, const, kind, env) -> bool:
        v = const + sum(c * env[x] for x, c in coeffs.items())
        return v == 0 if kind == "==" else v >= 0

    points: list[tuple] = []

    def rec(k: int, env: dict):
        if k == len(dims):
            if all(
                holds(co, ct, kd, env)
                for co, ct, kd in cons
                if set(co) <= set(env)
            ):
                if len(points) >= cap:
                    raise _CapExceeded()
                points.append(tuple(env[d] for d in dims))
            return
        d = dims[k]
        lo = hi = None
        for coeffs, const, kind in cons:
            a = coeffs.get(d, Fraction(0))
            if a == 0:
                continue
            others = set(coeffs) - {d}
            if not others <= set(env):
                continue
            rest = const + sum(coeffs[v] * env[v] for v in others)
            bound = -rest / a
            if kind == "==" or a > 0:
                lo = bound if lo is None else max(lo, bound)
            if kind == "==" or a < 0:
                hi = bound if hi is None else min(hi, bound)
        if lo is None or hi is None:
            raise _Bad(f"dimension {d!r} unbounded; cannot enumerate")
        for v in range(math.ceil(lo), math.floor(hi) + 1):
            env[d] = v
            rec(k + 1, env)
        env.pop(d, None)

    env0 = {k: Fraction(v) for k, v in params.items()}
    missing = {
        v for co, _, _ in cons for v in co if v not in env0 and v not in dims
    }
    if missing:
        raise _Bad(f"unbound parameters {sorted(missing)} in domain")
    rec(0, env0)
    return points


def _slice_widths(points, dims, temporal, reduction):
    """Per-temporal-slice distinct reduction tuples, plus the global set."""
    t_idx = [dims.index(d) for d in temporal]
    r_idx = [dims.index(d) for d in reduction]
    slices: dict[tuple, set] = {}
    for p in points:
        key = tuple(p[i] for i in t_idx)
        slices.setdefault(key, set()).add(tuple(p[i] for i in r_idx))
    glob: set = set()
    for s in slices.values():
        glob |= s
    return slices, glob


# ---------------------------------------------------------------------------
# symbolic replay above the enumeration cap
# ---------------------------------------------------------------------------

#: bound variable of the cached Faulhaber power-sum polynomials; the
#: leading underscores keep it clear of any certificate dim or parameter
_FSYM = "__n"

_FAULHABER: dict[int, dict] = {}


def _faulhaber(k: int) -> dict:
    """``F_k(n) = sum_{t=1..n} t^k`` as a polynomial in :data:`_FSYM`.

    Derived from the telescoping identity
    ``(n+1)^(k+1) - 1 = sum_{j<=k} C(k+1,j) F_j(n)`` — the same recurrence
    the engine's summation module uses, re-derived here so the checker
    stays independent of :mod:`repro.symbolic`.
    """
    if k in _FAULHABER:
        return _FAULHABER[k]
    acc = _psub(_ppow(_padd(_psym(_FSYM), _pconst(1)), k + 1), _pconst(1))
    for j in range(k):
        acc = _psub(acc, _pmul(_pconst(math.comb(k + 1, j)), _faulhaber(j)))
    out = _pmul(_pconst(Fraction(1, k + 1)), acc)
    _FAULHABER[k] = out
    return out


def _psum(p: dict, v: str, lo: dict, hi: dict) -> dict:
    """Closed form of ``sum over integer v from lo to hi of p``.

    Exact polynomial identity whenever ``hi >= lo - 1`` (empty ranges
    contribute 0) — the same convention the engine's instance counts are
    emitted under, so agreement is meaningful and disagreement is real.
    """
    groups: dict[int, dict] = {}
    for m, c in p.items():
        e = Fraction(0)
        rest = []
        for s, x in m:
            if s == v:
                e = x
            else:
                rest.append((s, x))
        if e.denominator != 1 or e < 0:
            raise _Bad(f"cannot sum {v}^{e} in closed form")
        g = groups.setdefault(int(e), {})
        m2 = tuple(rest)
        c2 = g.get(m2, Fraction(0)) + c
        if c2:
            g[m2] = c2
        else:
            g.pop(m2, None)
    lo1 = _psub(lo, _pconst(1))
    out: dict = {}
    for e, coeff in groups.items():
        f = _faulhaber(e)
        seg = _psub(_psubs(f, _FSYM, hi), _psubs(f, _FSYM, lo1))
        out = _padd(out, _pmul(coeff, seg))
    return out


def _classify_nest(dims, cons):
    """Recognize a unit-coefficient loop nest; None when outside it.

    Fragment: every constraint is an inequality that, viewed at the
    innermost dimension it mentions, has coefficient exactly +1 (a lower
    bound) or -1 (an upper bound), and every dimension ends up with
    exactly one of each.  Returns ``[(dim, lo_poly, hi_poly), ...]`` in
    loop order; the bound polynomials mention only parameters and
    strictly-outer dims, which is what makes innermost-out
    :func:`_psum` summation exact.
    """
    pos = {d: i for i, d in enumerate(dims)}
    los: dict[str, list] = {d: [] for d in dims}
    his: dict[str, list] = {d: [] for d in dims}
    for coeffs, const, kind in cons:
        if kind != ">=":
            return None
        mentioned = [v for v in coeffs if v in pos and coeffs[v]]
        if not mentioned:
            return None  # a parameter-only guard is outside the fragment
        d = max(mentioned, key=lambda v: pos[v])
        rest = _pconst(const)
        for v, c in coeffs.items():
            if v != d and c:
                rest = _padd(rest, _pmul(_pconst(c), _psym(v)))
        if coeffs[d] == 1:
            los[d].append(_pneg(rest))  # d + rest >= 0  =>  d >= -rest
        elif coeffs[d] == -1:
            his[d].append(rest)  # -d + rest >= 0  =>  d <= rest
        else:
            return None
    nest = []
    for d in dims:
        lo = [p for i, p in enumerate(los[d]) if p not in los[d][:i]]
        hi = [p for i, p in enumerate(his[d]) if p not in his[d][:i]]
        if len(lo) != 1 or len(hi) != 1:
            return None
        nest.append((d, lo[0], hi[0]))
    return nest


def _nest_count(nest) -> dict:
    """Exact instance-count polynomial of a classified nest."""
    p = _pconst(1)
    for d, lo, hi in reversed(nest):
        p = _psum(p, d, lo, hi)
    return p


def _ladder_envs(params: Mapping[str, int]):
    """The certified parameters and their x2/x3 scalings."""
    for mult in (1, 2, 3):
        yield mult, {k: v * mult for k, v in params.items()}


def _check_domain_symbolic(rep, cert, params):
    """Above-cap count replay: iterated Faulhaber summation, no points.

    Returns the classified nest (for the width replay) or None when the
    domain is outside the fragment (reported as C042, as before).
    """
    stmt = cert["statement"]
    dims, cons = _parse_domain(stmt["domain"], "statement.domain")
    nest = _classify_nest(dims, cons)
    if nest is None:
        rep.add(
            "C042",
            "warning",
            f"domain exceeds the enumeration cap ({ENUM_CAP} points) and"
            " is not a unit-coefficient loop nest; numeric and symbolic"
            " replays skipped",
            "statement",
        )
        return None
    count = _nest_count(nest)
    claimed = _pparse(stmt["instance_count"], "statement.instance_count")
    if not _peq(count, claimed):
        for mult, env in _ladder_envs(params):
            got = _peval(claimed, env, "statement.instance_count")
            want = _peval(count, env, "statement.instance_count")
            if got != want:
                rep.add(
                    "C041",
                    "error",
                    f"symbolic instance count does not replay: claimed"
                    f" {got} != Faulhaber-summed {want} at x{mult}"
                    " parameters",
                    "statement",
                )
                return nest
        rep.add(
            "C050",
            "warning",
            "claimed instance count differs from the Faulhaber-summed"
            " polynomial but agrees at the sampled parameters; undecided",
            "statement",
        )
    return nest


def _reduction_count(nest, dims, reduction):
    """Count of the reduction sub-nest, or None when slices may vary.

    Exact when no bound couples reduction and non-reduction dims: the
    domain then factorizes, every nonempty temporal slice holds exactly
    the full reduction box, and the slice width *is* its count.
    """
    red = set(reduction)
    dimset = set(dims)
    for d, lo, hi in nest:
        names = {s for p in (lo, hi) for m in p for s, _ in m}
        crossing = names & dimset
        if d in red:
            if not crossing <= red:
                return None
        elif crossing & red:
            return None
    p = _pconst(1)
    for d, lo, hi in reversed(nest):
        if d in red:
            p = _psum(p, d, lo, hi)
    return p


def _check_widths_symbolic(rep, cert, nest, params):
    """Above-cap Wmin/Wmax replay on the factorized reduction box."""
    pattern = cert["hourglass"]
    dims = list(cert["statement"]["dims"])
    w = _reduction_count(nest, dims, pattern["reduction"])
    if w is None:
        rep.add(
            "C051",
            "warning",
            "reduction bounds couple with temporal/neutral dims; symbolic"
            " width replay undecided above the enumeration cap",
            "hourglass",
        )
        return
    w_min = _pparse(pattern["width_min"], "hourglass.width_min")
    w_max = _pparse(pattern["width_max"], "hourglass.width_max")
    # every nonempty temporal slice is the full reduction box, so the
    # narrowest slice and the global set both have exactly `w` tuples
    for claimed, label, sign in ((w_min, "Wmin", 1), (w_max, "Wmax", -1)):
        if _peq(w, claimed):
            continue
        refuted = False
        for mult, env in _ladder_envs(params):
            actual = _peval(w, env, "hourglass.width")
            cl = _peval(claimed, env, f"hourglass.{label}")
            if sign * (actual - cl) < 0:
                rep.add(
                    "C040",
                    "error",
                    f"symbolic width replay: every slice has {actual}"
                    f" reduction tuples at x{mult} parameters,"
                    f" {'<' if sign > 0 else '>'} claimed {label} {cl}",
                    "hourglass",
                )
                refuted = True
                break
        if not refuted:
            rep.add(
                "C051",
                "warning",
                f"claimed {label} differs from the symbolic slice-width"
                " polynomial but is not refuted at the sampled parameters;"
                " undecided",
                "hourglass",
            )


# ---------------------------------------------------------------------------
# per-bound checks
# ---------------------------------------------------------------------------


def _check_classical(rep, bound, witness, stmt_dims, proj_dimsets, where):
    exponents = [
        _frac(x, f"{where} exponent")
        for x in _get(witness, "exponents", list, where)
    ]
    wprojs = [
        sorted(_strlist(p, f"{where} witness projection"))
        for p in _get(witness, "projections", list, where)
    ]
    wdims = _strlist(_get(witness, "dims", list, where), f"{where}.dims")
    sigma = _frac(_get(witness, "sigma", None, where), f"{where}.sigma")
    disjoint = _get(witness, "disjoint", bool, where)

    if set(wdims) != set(stmt_dims):
        rep.add(
            "C011",
            "error",
            f"witness dims {sorted(wdims)} != statement dims"
            f" {sorted(stmt_dims)}",
            where,
        )
    for p in wprojs:
        if p not in proj_dimsets:
            rep.add(
                "C011",
                "error",
                f"witness projection {p} not among certified projections",
                where,
            )
    if len(exponents) != len(wprojs):
        rep.add(
            "C020",
            "error",
            f"{len(exponents)} exponents for {len(wprojs)} projections",
            where,
        )
        return
    for j, s_j in enumerate(exponents):
        if not (0 <= s_j <= 1):
            rep.add(
                "C020", "error", f"exponent s_{j} = {s_j} outside [0, 1]", where
            )
    for d in wdims:
        cover = sum(
            (s_j for s_j, p in zip(exponents, wprojs) if d in p),
            Fraction(0),
        )
        if cover < 1:
            rep.add(
                "C021",
                "error",
                f"dim {d!r} covered with weight {cover} < 1",
                where,
            )
    if sigma != sum(exponents, Fraction(0)):
        rep.add(
            "C022",
            "error",
            f"sigma {sigma} != sum of exponents {sum(exponents, Fraction(0))}",
            where,
        )
        return
    method = bound["method"]
    if disjoint != (method == "classical-disjoint"):
        rep.add(
            "C031",
            "error",
            f"method {method!r} inconsistent with disjoint={disjoint}",
            where,
        )
    if sigma <= 1:
        rep.add("C022", "error", f"sigma {sigma} <= 1: bound degenerate", where)
        return

    # coefficient replay: (sigma-1)^(sigma-1) / sigma^sigma, times
    # (sigma/s_j)^s_j per positive exponent when the insets are disjoint
    sf = float(sigma)
    coeff = (sf - 1.0) ** (sf - 1.0) / sf**sf
    if disjoint:
        for s_j in exponents:
            if s_j > 0:
                coeff *= (sf / float(s_j)) ** float(s_j)
    got = bound["coeff"]
    if not isinstance(got, (int, float)) or not math.isclose(
        got, coeff, rel_tol=1e-9
    ):
        rep.add(
            "C023",
            "error",
            f"coefficient {got!r} does not replay (expected {coeff!r})",
            where,
        )

    # expression replay: Q >= coeff * |V| * S**(1-sigma)
    v = _pparse(_get(witness, "v_count", list, where), f"{where}.v_count")
    s_pow = {(("S", Fraction(1) - sigma),): Fraction(1)}
    expected_num = _pmul(v, s_pow)  # expected denominator is 1
    num = _pparse(bound["expr"]["num"], f"{where}.expr.num")
    den = _pparse(bound["expr"]["den"], f"{where}.expr.den")
    if not _peq(_pmul(expected_num, den), num):
        rep.add(
            "C024",
            "error",
            "expression does not replay as |V| * S**(1-sigma)",
            where,
        )


def _lemma_counts(lemmas, where):
    counts = {
        "lemma4-width-cap": [],
        "lemma4-converted-projection": [],
        "projection-cap": [],
        "flatness": [],
        "uncovered-slice-dim": [],
        "theorem1": [],
        "theorem5-small-cache": [],
    }
    for i, step in enumerate(lemmas):
        name = _get(step, "lemma", str, f"{where}.lemmas[{i}]")
        if name not in counts:
            raise _Bad(f"{where}.lemmas[{i}]: unknown lemma {name!r}")
        counts[name].append(step)
    return counts


def _check_hourglass_bookkeeping(
    rep, bound, witness, pattern, stmt_dims, proj_dimsets, where
):
    """C030/C031/C033: the lemma chain must cover everything it claims.

    Returns the (c, p, m, k_mult) replay parameters, or None when the
    chain is too broken to replay.
    """
    kind = witness["kind"]
    method = bound["method"]
    temporal = pattern["temporal"]
    reduction = pattern["reduction"]
    neutral = pattern["neutral"]

    lemmas = _get(witness, "lemmas", list, where)
    steps = _lemma_counts(lemmas, where)
    ok = True

    # |I'| chain: width cap + converted/capped projections cover all dims.
    # The small-cache bound never forms I' (E' is empty at K = Wmin), so
    # its chain must be absent rather than complete.
    caps = steps["lemma4-width-cap"]
    i_chain = (
        caps
        + steps["lemma4-converted-projection"]
        + steps["projection-cap"]
    )
    if kind == "hourglass-small-cache":
        if i_chain:
            rep.add(
                "C031",
                "error",
                "small-cache bound carries an |I'| chain it never uses",
                where,
            )
            ok = False
    elif len(caps) != 1:
        rep.add(
            "C031", "error", f"{len(caps)} width-cap steps (need 1)", where
        )
        ok = False
    covered: set[str] = set()
    if caps:
        cap_covers = set(
            _strlist(_get(caps[0], "covers", list, where), f"{where} covers")
        )
        if cap_covers != set(reduction):
            rep.add(
                "C031",
                "error",
                f"width cap covers {sorted(cap_covers)},"
                f" not the reduction dims {sorted(reduction)}",
                where,
            )
            ok = False
        covered |= cap_covers
    for step in steps["lemma4-converted-projection"] + steps["projection-cap"]:
        pdims = sorted(
            _strlist(_get(step, "projection", list, where), f"{where} proj")
        )
        scov = set(
            _strlist(_get(step, "covers", list, where), f"{where} covers")
        )
        if pdims not in proj_dimsets:
            rep.add(
                "C031",
                "error",
                f"lemma step instantiates unknown projection {pdims}",
                where,
            )
            ok = False
        if not scov <= set(pdims):
            rep.add(
                "C031",
                "error",
                f"step claims to cover {sorted(scov)} outside its"
                f" projection {pdims}",
                where,
            )
            ok = False
        if step["lemma"] == "lemma4-converted-projection" and not (
            set(pdims) & set(reduction)
        ):
            rep.add(
                "C031",
                "error",
                f"converted projection {pdims} shares no reduction dim;"
                " the K/Wmin conversion does not apply",
                where,
            )
            ok = False
        covered |= scov
    if kind != "hourglass-small-cache" and covered != set(stmt_dims):
        rep.add(
            "C031",
            "error",
            f"|I'| chain covers {sorted(covered)}, not all statement dims"
            f" {sorted(stmt_dims)}",
            where,
        )
        ok = False

    # |F| chain: one flatness step; every reduction/neutral dim outside
    # phi_w must carry an uncovered-slice-dim factor
    flat = steps["flatness"]
    if len(flat) != 1:
        rep.add(
            "C031", "error", f"{len(flat)} flatness steps (need 1)", where
        )
        ok = False
    else:
        phi_w = sorted(
            _strlist(_get(flat[0], "phi_w", list, where), f"{where}.phi_w")
        )
        if phi_w not in proj_dimsets:
            rep.add(
                "C031", "error", f"phi_w {phi_w} is not a certified projection",
                where,
            )
            ok = False
        if not set(neutral) <= set(phi_w):
            rep.add(
                "C031",
                "error",
                f"phi_w {phi_w} misses neutral dims"
                f" {sorted(set(neutral) - set(phi_w))} (R > 1 unsupported)",
                where,
            )
            ok = False
        need = {d for d in list(reduction) + list(neutral) if d not in phi_w}
        have = {
            _get(s, "dim", str, where) for s in steps["uncovered-slice-dim"]
        }
        if need != have:
            rep.add(
                "C031",
                "error",
                f"uncovered-slice-dim steps {sorted(have)} != slice dims"
                f" outside phi_w {sorted(need)}",
                where,
            )
            ok = False

    # terminal step: which K is plugged into Theorem 1
    k_mult = None
    if kind in ("hourglass", "hourglass-split"):
        if steps["theorem5-small-cache"] or len(steps["theorem1"]) != 1:
            rep.add(
                "C031", "error", "need exactly one theorem1 terminal step",
                where,
            )
            ok = False
        else:
            k_mult = steps["theorem1"][0].get("k_mult")
            if not isinstance(k_mult, int) or k_mult < 2:
                rep.add(
                    "C031",
                    "error",
                    f"k_mult {k_mult!r} must be an integer >= 2"
                    " (K - S must stay positive)",
                    where,
                )
                ok = False
    else:  # hourglass-small-cache
        if steps["theorem1"] or len(steps["theorem5-small-cache"]) != 1:
            rep.add(
                "C031",
                "error",
                "need exactly one theorem5-small-cache terminal step",
                where,
            )
            ok = False

    # witness/pattern binding: unsplit bounds must use the pattern's widths
    w_min = _pparse(_get(witness, "width_min", list, where), f"{where}.Wmin")
    w_max = _pparse(_get(witness, "width_max", list, where), f"{where}.Wmax")
    pat_min = _pparse(pattern["width_min"], "hourglass.width_min")
    pat_max = _pparse(pattern["width_max"], "hourglass.width_max")
    if not _peq(w_max, pat_max):
        rep.add(
            "C031", "error", "witness Wmax differs from the pattern's", where
        )
        ok = False
    if kind != "hourglass-split" and not _peq(w_min, pat_min):
        rep.add(
            "C031", "error", "witness Wmin differs from the pattern's", where
        )
        ok = False

    if kind == "hourglass-split":
        split = witness.get("split")
        if not isinstance(split, dict) or "dim" not in split or "at" not in split:
            rep.add(
                "C033", "error", "split bound lacks its split instantiation",
                where,
            )
            return None
        if split["dim"] not in temporal:
            rep.add(
                "C033",
                "error",
                f"split dim {split['dim']!r} is not a temporal dim",
                where,
            )
            ok = False
    elif method != "hourglass-split" and "split" in witness:
        rep.add(
            "C031", "error", "unsplit bound carries a split instantiation",
            where,
        )
        ok = False

    if not ok:
        return None
    c = len(steps["lemma4-converted-projection"])
    p = len(steps["projection-cap"])
    m = len(steps["uncovered-slice-dim"])
    return c, p, m, k_mult


def _check_hourglass_replay(rep, bound, witness, cpmk, where):
    """C032: rebuild the bound expression from the lemma chain.

    With c converted projections, p projection caps and m uncovered slice
    dims, §4 gives ``Q >= (K - S) |V| Wmin^c / (Wmax K^(c+p)
    + 2 K^(m+1) Wmin^c)`` — K = k_mult*S for the main bound, K left
    symbolic for the small-cache variant, whose denominator is just
    ``2 K^m Wmin`` (E' is empty at K = Wmin).
    """
    c, p, m, k_mult = cpmk
    v = _pparse(witness["v_count"], f"{where}.v_count")
    w_min = _pparse(witness["width_min"], f"{where}.Wmin")
    w_max = _pparse(witness["width_max"], f"{where}.Wmax")
    k, s = _psym("K"), _psym("S")

    if witness["kind"] == "hourglass-small-cache":
        exp_num = _pmul(_psub(w_min, s), v)
        exp_den = _pmul(_pconst(2), _pmul(_ppow(k, m), w_min))
    else:
        exp_num = _pmul(_pmul(_psub(k, s), v), _ppow(w_min, c))
        exp_den = _padd(
            _pmul(w_max, _ppow(k, c + p)),
            _pmul(_pconst(2), _pmul(_ppow(k, m + 1), _ppow(w_min, c))),
        )
        k_poly = _pmul(_pconst(k_mult), s)
        exp_num = _psubs(exp_num, "K", k_poly)
        exp_den = _psubs(exp_den, "K", k_poly)

    num = _pparse(bound["expr"]["num"], f"{where}.expr.num")
    den = _pparse(bound["expr"]["den"], f"{where}.expr.den")
    if not _peq(_pmul(exp_num, den), _pmul(num, exp_den)):
        rep.add(
            "C032",
            "error",
            "bound expression does not match the lemma-chain replay",
            where,
        )
    coeff = bound["coeff"]
    if coeff != 1.0 and coeff != 1:
        rep.add(
            "C032",
            "error",
            f"hourglass bounds are exact; coefficient {coeff!r} != 1",
            where,
        )


# ---------------------------------------------------------------------------
# numeric replays on the enumerated domain
# ---------------------------------------------------------------------------


def _check_domain_numeric(rep, cert, params):
    """Enumerate and count-check the domain; ``(points, cap_hit)``.

    ``points`` is None on any failure; ``cap_hit`` is True exactly when
    enumeration overflowed :data:`ENUM_CAP`, which sends the caller down
    the symbolic replay path instead of skipping.
    """
    stmt = cert["statement"]
    dims, cons = _parse_domain(stmt["domain"], "statement.domain")
    if list(stmt["dims"]) != dims:
        rep.add(
            "C010",
            "error",
            f"domain dims {dims} != statement dims {list(stmt['dims'])}",
            "statement",
        )
        return None, False
    try:
        points = _enum_points(dims, cons, params, ENUM_CAP)
    except _CapExceeded:
        return None, True
    if not points:
        rep.add("C041", "error", "iteration domain is empty", "statement")
        return None, False
    claimed = _peval(
        _pparse(stmt["instance_count"], "statement.instance_count"),
        params,
        "statement.instance_count",
    )
    if claimed != len(points):
        rep.add(
            "C041",
            "error",
            f"symbolic instance count {claimed} != enumerated {len(points)}",
            "statement",
        )
    return points, False


def _check_widths_numeric(rep, cert, points, params):
    pattern = cert["hourglass"]
    stmt_dims = list(cert["statement"]["dims"])
    slices, glob = _slice_widths(
        points, stmt_dims, pattern["temporal"], pattern["reduction"]
    )
    w_min = _peval(
        _pparse(pattern["width_min"], "hourglass.width_min"),
        params,
        "hourglass.width_min",
    )
    w_max = _peval(
        _pparse(pattern["width_max"], "hourglass.width_max"),
        params,
        "hourglass.width_max",
    )
    min_slice = min(len(s) for s in slices.values())
    if min_slice < w_min:
        rep.add(
            "C040",
            "error",
            f"narrowest temporal slice has {min_slice} reduction values"
            f" < claimed Wmin {w_min}",
            "hourglass",
        )
    if len(glob) > w_max:
        rep.add(
            "C040",
            "error",
            f"{len(glob)} distinct reduction values > claimed Wmax {w_max}",
            "hourglass",
        )


def _check_split_numeric(rep, bound, cert, points, params, where):
    """C034/C040 for one split bound: replay count and width of part 1.

    The split point may reference S; every S in ``_SPLIT_S_TRIALS`` that
    makes it integral is checked (gehd2's N-S-2 split is integral for all
    of them; N/2 only when N is even — with odd N no trial grounds it and
    the replay is skipped with a C043 warning).
    """
    witness = bound["witness"]
    split = witness["split"]
    pattern = cert["hourglass"]
    stmt_dims = list(cert["statement"]["dims"])
    at_poly = _pparse(split["at"], f"{where}.split.at")
    v_poly = _pparse(witness["v_count"], f"{where}.v_count")
    w_poly = _pparse(witness["width_min"], f"{where}.Wmin")
    idx = stmt_dims.index(split["dim"])

    tried = 0
    for s in _SPLIT_S_TRIALS:
        env = dict(params)
        env["S"] = s
        at = _peval(at_poly, env, f"{where}.split.at")
        if at.denominator != 1:
            continue
        tried += 1
        part1 = [pt for pt in points if pt[idx] <= int(at) - 1]
        claimed_v = _peval(v_poly, env, f"{where}.v_count")
        if claimed_v != len(part1):
            rep.add(
                "C034",
                "error",
                f"split part has {len(part1)} instances at S={s},"
                f" witness claims {claimed_v}",
                where,
            )
            continue
        if not part1:
            rep.add(
                "C034", "error", f"split part empty at S={s}", where
            )
            continue
        slices, glob = _slice_widths(
            part1, stmt_dims, pattern["temporal"], pattern["reduction"]
        )
        w_min = _peval(w_poly, env, f"{where}.Wmin")
        min_slice = min(len(x) for x in slices.values())
        if min_slice < w_min:
            rep.add(
                "C040",
                "error",
                f"split part's narrowest slice has {min_slice} reduction"
                f" values < claimed Wmin {w_min} at S={s}",
                where,
            )
    if not tried:
        # a symbolic split point (e.g. N/2 with odd N) can be non-integral
        # at the certified parameters for every trial S — the bound is a
        # valid relaxation but its part-1 count has no exact ground
        # instantiation here, so the replay is inapplicable, not refuted
        rep.add(
            "C043",
            "warning",
            f"split point never integral at S in {_SPLIT_S_TRIALS};"
            " numeric split replay skipped",
            where,
        )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

_KIND_FOR_METHOD = {
    "classical": "classical",
    "classical-disjoint": "classical",
    "hourglass": "hourglass",
    "hourglass-small-cache": "hourglass-small-cache",
    "hourglass-split": "hourglass-split",
}


def _run(cert: dict, engine_version, rep: CertCheckReport):
    rep.ran("schema")
    schema = _get(cert, "schema", str, "certificate")
    if schema != _CERT_SCHEMA:
        rep.add(
            "C002",
            "error",
            f"unknown certificate schema {schema!r} (expected {_CERT_SCHEMA})",
        )
        return
    rep.kernel = _get(cert, "kernel", str, "certificate")

    rep.ran("engine-version")
    ev = _get(cert, "engine_version", int, "certificate")
    if engine_version is not None and ev != engine_version:
        rep.add(
            "C003",
            "warning",
            f"certificate from engine version {ev},"
            f" checking against {engine_version}",
        )

    stmt = _get(cert, "statement", dict, "certificate")
    stmt_dims = _strlist(
        _get(stmt, "dims", list, "statement"), "statement.dims"
    )
    params = _get(cert, "small_params", dict, "certificate")
    if not all(isinstance(v, int) for v in params.values()):
        raise _Bad("small_params must be integers")

    rep.ran("projections")
    projections = _get(cert, "projections", list, "certificate")
    if not projections:
        rep.add("C010", "error", "certificate lists no projections")
    proj_dimsets = []
    for i, p in enumerate(projections):
        pd = sorted(
            _strlist(_get(p, "dims", list, f"projections[{i}]"), "projection")
        )
        if not set(pd) <= set(stmt_dims):
            rep.add(
                "C010",
                "error",
                f"projection {pd} not grounded in statement dims"
                f" {sorted(stmt_dims)}",
                f"projections[{i}]",
            )
        proj_dimsets.append(pd)

    pattern = cert.get("hourglass")
    if pattern is not None:
        rep.ran("pattern")
        temporal = _strlist(
            _get(pattern, "temporal", list, "hourglass"), "hourglass.temporal"
        )
        reduction = _strlist(
            _get(pattern, "reduction", list, "hourglass"),
            "hourglass.reduction",
        )
        neutral = _strlist(
            _get(pattern, "neutral", list, "hourglass"), "hourglass.neutral"
        )
        groups = [temporal, reduction, neutral]
        union = set().union(*groups)
        if union != set(stmt_dims) or sum(map(len, groups)) != len(stmt_dims):
            rep.add(
                "C030",
                "error",
                f"temporal/reduction/neutral {groups} is not a partition of"
                f" the statement dims {sorted(stmt_dims)}",
                "hourglass",
            )
            pattern = None  # chain checks would be meaningless
        elif not temporal or not reduction:
            rep.add(
                "C030",
                "error",
                "hourglass needs at least one temporal and one reduction dim",
                "hourglass",
            )
            pattern = None

    bounds = _get(cert, "bounds", list, "certificate")
    if not bounds:
        rep.add("C001", "error", "certificate contains no bounds")
    split_bounds = []
    for i, bound in enumerate(bounds):
        method = _get(bound, "method", str, f"bounds[{i}]")
        where = f"bounds[{i}]:{method}"
        rep.ran(f"bound:{method}")
        witness = _get(bound, "witness", dict, where)
        kind = _get(witness, "kind", str, where)
        _get(bound, "coeff", (int, float), where)
        expr = _get(bound, "expr", dict, where)
        _get(expr, "num", list, where)
        _get(expr, "den", list, where)
        if _KIND_FOR_METHOD.get(method) != kind:
            rep.add(
                "C031",
                "error",
                f"witness kind {kind!r} does not match method {method!r}",
                where,
            )
            continue
        if kind == "classical":
            _check_classical(rep, bound, witness, stmt_dims, proj_dimsets, where)
        else:
            if pattern is None:
                rep.add(
                    "C030",
                    "error",
                    "hourglass bound without a usable hourglass pattern",
                    where,
                )
                continue
            cpmk = _check_hourglass_bookkeeping(
                rep, bound, witness, pattern, stmt_dims, proj_dimsets, where
            )
            if cpmk is not None:
                _check_hourglass_replay(rep, bound, witness, cpmk, where)
                if kind == "hourglass-split":
                    split_bounds.append((bound, where))
            # non-split bounds must count the whole statement
            if kind != "hourglass-split":
                v = _pparse(witness["v_count"], f"{where}.v_count")
                total = _pparse(
                    stmt["instance_count"], "statement.instance_count"
                )
                if not _peq(v, total):
                    rep.add(
                        "C031",
                        "error",
                        "witness |V| differs from the statement's instance"
                        " count",
                        where,
                    )

    rep.ran("domain")
    points, cap_hit = _check_domain_numeric(rep, cert, params)
    if points is not None:
        if pattern is not None:
            rep.ran("widths")
            _check_widths_numeric(rep, cert, points, params)
        for bound, where in split_bounds:
            rep.ran("split")
            _check_split_numeric(rep, bound, cert, points, params, where)
    elif cap_hit:
        rep.ran("domain-symbolic")
        nest = _check_domain_symbolic(rep, cert, params)
        if nest is not None:
            if pattern is not None:
                rep.ran("widths-symbolic")
                _check_widths_symbolic(rep, cert, nest, params)
            for bound, where in split_bounds:
                rep.ran("split")
                rep.add(
                    "C052",
                    "warning",
                    "split replay needs the enumerated part-1 domain;"
                    " skipped above the enumeration cap",
                    where,
                )


def check_certificate(
    cert: dict, engine_version: int | None = None
) -> CertCheckReport:
    """Independently verify an ``iolb-cert/1`` document.

    Never raises: structural problems become C001 findings.  Pass the
    running engine's version as ``engine_version`` to get a C003 warning
    on mismatch (the CLI does).
    """
    rep = CertCheckReport()
    with obs.span("cert.check"):
        try:
            _run(cert, engine_version, rep)
        except _Bad as e:
            rep.add("C001", "error", str(e))
        except Exception as e:  # noqa: BLE001 — the checker must not crash
            rep.add("C001", "error", f"malformed certificate: {e!r}")
        obs.add("cert.checks_performed")
        if not rep.ok():
            obs.add("cert.certificates_rejected")
    return rep
