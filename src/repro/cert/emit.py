"""Certificate emission: serialize a derivation into ``iolb-cert/1``.

The certificate is a self-contained JSON document: everything the
independent checker (:mod:`repro.cert.check`) needs to replay the proof
is *in* the document — the statement's iteration domain (as affine
constraints), the dependence projections, the hourglass decomposition,
the BL witness vector, and each bound's lemma trail with concrete
instantiations.  The checker never consults the derivation engine.

Exact values serialize exactly: polynomials as canonical term lists
(:meth:`repro.symbolic.Poly.to_terms`), rationals/Fractions as ``"p/q"``
strings, affine constraints via :meth:`repro.polyhedral.ISet.to_dict`.
The only float in the document is the classical bound's irrational
``coeff`` (the checker recomputes it and compares with a tight relative
tolerance).

:func:`certificate_json` is the canonical rendering — ``json.dumps``
with sorted keys and a trailing newline, no timestamps or hostnames —
so golden certificates are byte-stable across runs and machines.
"""

from __future__ import annotations

import json
from typing import Mapping

from .. import obs
from ..bounds.derivation import DerivationReport
from ..bounds.kpartition import BoundResult
from ..cache.sim import ENGINE_VERSION
from ..ir import Program
from ..symbolic import Poly, poly

__all__ = ["CERT_SCHEMA", "build_certificate", "certificate_json"]

CERT_SCHEMA = "iolb-cert/1"


def _poly_terms(p: Poly) -> list:
    return p.to_terms()


def _witness_dict(witness: dict) -> dict:
    """JSON-able copy of a BoundResult witness (Poly values → term lists)."""
    out = {}
    for k, v in witness.items():
        if isinstance(v, Poly):
            out[k] = _poly_terms(v)
        elif k == "split":
            out[k] = {"dim": v["dim"], "at": _poly_terms(poly(v["at"]))}
        else:
            out[k] = v
    return out


def _bound_dict(b: BoundResult) -> dict:
    if b.witness is None:
        raise ValueError(
            f"bound {b.method!r} carries no witness; cannot certify"
        )
    return {
        "method": b.method,
        "coeff": b.coeff,
        "sigma": str(b.sigma) if b.sigma is not None else None,
        "k_choice": b.k_choice,
        "condition": b.condition,
        "expr": {
            "num": _poly_terms(b.expr.num),
            "den": _poly_terms(b.expr.den),
        },
        "witness": _witness_dict(b.witness),
    }


def build_certificate(
    report: DerivationReport,
    program: Program,
    small_params: Mapping[str, int],
) -> dict:
    """Assemble the ``iolb-cert/1`` document for one derivation.

    ``small_params`` are the concrete parameter values the checker uses
    for its numeric replays (domain enumeration, width and count checks);
    they must keep the domain within the checker's enumeration cap, which
    every kernel's ``default_params`` does.

    Raises :class:`ValueError` when the report has no bounds (nothing to
    certify) or a bound lacks its witness.
    """
    with obs.span("cert.emit", kernel=report.kernel):
        bounds = report.all_bounds()
        if not bounds:
            raise ValueError(
                f"derivation of {report.kernel!r} produced no bounds"
            )
        stmt = program.statement(report.dominant)
        cert = {
            "schema": CERT_SCHEMA,
            "engine_version": ENGINE_VERSION,
            "kernel": report.kernel,
            "dominant": report.dominant,
            "small_params": {k: int(v) for k, v in sorted(small_params.items())},
            "statement": {
                "name": stmt.name,
                "dims": list(stmt.dims),
                "domain": stmt.domain().to_dict(),
                "instance_count": _poly_terms(stmt.instance_count()),
            },
            "projections": [
                {
                    "dims": sorted(p.dims),
                    "via": p.via,
                    "origin": p.origin,
                    "producer": p.producer,
                }
                for p in report.projections
            ],
            "hourglass": None,
            "bounds": [_bound_dict(b) for b in bounds],
        }
        if report.hourglass_pattern is not None:
            hp = report.hourglass_pattern
            cert["hourglass"] = {
                "temporal": list(hp.temporal),
                "reduction": list(hp.reduction),
                "neutral": list(hp.neutral),
                "width_min": _poly_terms(hp.width_min),
                "width_max": _poly_terms(hp.width_max),
                "parametric_width": bool(hp.parametric_width),
            }
        obs.add("cert.certificates_emitted")
        obs.add("cert.bounds_certified", len(bounds))
        return cert


def certificate_json(cert: dict) -> str:
    """The canonical byte-stable rendering of a certificate."""
    return json.dumps(cert, indent=2, sort_keys=True) + "\n"
