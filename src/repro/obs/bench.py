"""Declarative in-process benchmark suite behind ``iolb bench``.

A :class:`Benchmark` is a named workload (untimed ``setup`` + timed ``fn``);
:func:`run_suite` runs each one with warmup + N timed repeats and reports
robust statistics (min / median / MAD of wall and CPU seconds — median and
MAD rather than mean and σ because scheduler outliers are one-sided), then
makes **one extra instrumented pass** with the :mod:`repro.obs` registry
enabled to capture the per-phase span breakdown and the deterministic work
counters (FM eliminations, pebble nodes played, simulated events, …).  The
timed repeats always run with instrumentation *off*, so the numbers measure
the code, not the profiler; the counters come from the separate pass, where
their cost is irrelevant because they are exact.

:func:`default_suite` is the standing workload set every perf PR is judged
against: ``derive`` on all five hourglass kernels, the Belady and LRU
engines on a seeded synthetic trace, a coarse tuner sweep (memo disabled —
a cache hit would benchmark the cache), a seeded verify smoke, the
static analyzer over the five builtin kernel sources, and two ``serve.*``
workloads that boot the real derivation service and fire a mixed burst at
it (one against a warm result backend, one forcing recomputation).

:func:`bench_record` wraps the results into the versioned ``iolb-bench/1``
JSON that :mod:`repro.obs.history` stores and gates on.

Workload constructors import the rest of :mod:`repro` lazily inside
function bodies: ``repro.bounds`` et al. import :mod:`repro.obs` at module
load, so a top-level import here would be a cycle.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Callable, Iterable, Mapping, Sequence

from . import core as obs
from .envinfo import env_fingerprint
from .history import BENCH_SCHEMA, DEFAULT_SUITE

__all__ = [
    "Benchmark",
    "TimingStats",
    "BenchResult",
    "default_suite",
    "select_benchmarks",
    "run_benchmark",
    "run_suite",
    "bench_record",
]


@dataclass(frozen=True)
class Benchmark:
    """One named workload: ``fn(payload)`` timed, ``setup()``/``teardown()`` not.

    ``teardown(payload)`` runs exactly once after the last (instrumented)
    pass, even when a run raises — workloads that boot real resources (the
    ``serve.*`` benches start an HTTP server) release them there.
    """

    name: str  # "group.case", e.g. "derive.mgs"
    fn: Callable[[Any], Any]
    setup: Callable[[], Any] | None = None
    description: str = ""
    teardown: Callable[[Any], None] | None = None

    @property
    def group(self) -> str:
        return self.name.split(".", 1)[0]


@dataclass(frozen=True)
class TimingStats:
    """Robust summary of repeated timings, in seconds."""

    min: float
    median: float
    mad: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TimingStats":
        med = median(samples)
        return cls(
            min=min(samples),
            median=med,
            mad=median(abs(x - med) for x in samples),
            samples=tuple(samples),
        )

    def to_dict(self) -> dict:
        return {
            "min": round(self.min, 6),
            "median": round(self.median, 6),
            "mad": round(self.mad, 6),
            "samples": [round(x, 6) for x in self.samples],
        }


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's measured statistics plus its instrumented profile."""

    name: str
    repeats: int
    wall_s: TimingStats
    cpu_s: TimingStats
    counters: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)  # per-path {count, wall_us, cpu_us}

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "wall_s": self.wall_s.to_dict(),
            "cpu_s": self.cpu_s.to_dict(),
            "counters": dict(self.counters),
            "spans": {
                path: {
                    "count": int(row["count"]),
                    "wall_us": round(row["wall_us"], 3),
                    "cpu_us": round(row["cpu_us"], 3),
                }
                for path, row in self.spans.items()
            },
        }


# ---------------------------------------------------------------------------
# the standing workload set
# ---------------------------------------------------------------------------

#: synthetic-trace shape for the engine benchmarks (seeded, hot-set + cold scan)
_TRACE_EVENTS = 120_000
_TRACE_S = 1024


def _synthetic_trace():
    """Seeded hot-set/cold-scan trace as :class:`repro.ir.TraceArrays`."""
    import numpy as np

    from ..ir import Event, TraceArrays

    rng = np.random.RandomState(7)
    t, hot, cold_space = _TRACE_EVENTS, 512, 50_000
    cold = rng.random(t) < 0.03
    idx = np.where(
        cold,
        hot + rng.randint(0, cold_space, size=t),
        rng.randint(0, hot, size=t),
    )
    is_write = rng.random(t) < 0.1
    table = {int(a): ("x", (int(a),)) for a in np.unique(idx)}
    events = [
        Event("W" if w else "R", table[a])
        for a, w in zip(idx.tolist(), is_write.tolist())
    ]
    return TraceArrays.from_events(events)


def default_suite() -> list[Benchmark]:
    """The standing benchmarks: derive x5, engines, tuner sweep, verify smoke."""

    def _derive(kernel: str) -> Benchmark:
        def fn(_payload, _name=kernel):
            from ..bounds import derive
            from ..kernels import get_kernel

            return derive(get_kernel(_name))

        return Benchmark(
            f"derive.{kernel}",
            fn,
            description=f"full bound derivation for the {kernel} hourglass kernel",
        )

    def _belady(ta):
        from ..cache import simulate_belady

        return simulate_belady(ta, _TRACE_S)

    def _lru(ta):
        from ..cache import simulate_lru

        return simulate_lru(ta, _TRACE_S)

    def _tune(_payload):
        from ..bounds import tune_block_size
        from ..kernels import get_tiled

        return tune_block_size(
            get_tiled("tiled_mgs"), {"M": 16, "N": 12}, 96, mode="coarse", memo=None
        )

    def _verify(_payload):
        from ..verify import run_verify

        rep = run_verify(["mgs"], [], trials=2, seed=0, fuzz_programs=0, shrink=False)
        if not rep.ok():
            raise RuntimeError("verify smoke failed inside the bench suite")
        return rep

    def _lint(_payload):
        from ..analysis import check_source
        from ..frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES
        from ..kernels import KERNELS

        for name, src in FIGURE_SOURCES.items():
            k = KERNELS[name]
            rep, _ = check_source(
                src,
                name=name,
                params=k.default_params,
                shapes=FIGURE_SHAPE_EXPRS[name],
                dominant=k.dominant,
            )
            if not rep.ok():
                raise RuntimeError(f"lint errors on builtin kernel {name}")
        return rep

    def _lint_deps(_payload):
        from ..analysis.deps import build_dependences, check_schedule
        from ..kernels import KERNELS, get_tiled

        alg = get_tiled("tiled_mgs")
        program = KERNELS[alg.base].program
        deps = build_dependences(program)
        diags = check_schedule(program, alg.schedule_spec(2), deps=deps)
        if any(d.severity == "error" for d in diags):
            raise RuntimeError("tiled_mgs schedule flagged illegal in bench")
        for name in ("matmul", "cholesky"):
            build_dependences(KERNELS[name].program)
        return diags

    # -- serve.*: the derivation service under load -----------------------
    # Both workloads boot a real HTTP server (inline execution mode: no
    # worker processes inside a bench) against a throwaway result backend
    # and time a small mixed derive/simulate burst end-to-end — request
    # parsing, keying, coalescing/memoisation, JSON transport.  The fn
    # merges the *delta* of the server's private counter registry into the
    # global one, so the instrumented pass records deterministic serve.*
    # and cache.* work counters that the CI exact-match gate can hold.

    def _serve_setup():
        import shutil
        import tempfile

        from ..serve import IolbServer, mixed_burst

        tmp = tempfile.mkdtemp(prefix="iolb-serve-bench-")
        srv = IolbServer(workers=0, memo_dir=tmp).start()
        return {
            "srv": srv,
            "tmp": tmp,
            "burst": mixed_burst(repeat=2),
            "rmtree": shutil.rmtree,
        }

    def _serve_teardown(payload):
        payload["srv"].shutdown()
        payload["rmtree"](payload["tmp"], ignore_errors=True)

    def _serve_fire(payload, *, concurrency: int) -> None:
        from ..serve import run_load

        srv = payload["srv"]
        before = srv.registry.counters()
        rep = run_load(srv.url, payload["burst"], concurrency=concurrency)
        if not rep.ok():
            raise RuntimeError(f"serve bench burst failed: {rep.summary()}")
        after = srv.registry.counters()
        delta = {k: v - before.get(k, 0) for k, v in after.items() if v > before.get(k, 0)}
        obs.merge_counters(delta)

    def _serve_hits(payload):
        # backend pre-warmed by the warmup pass; every request is a hit
        _serve_fire(payload, concurrency=2)

    def _serve_compute(payload):
        # clear the backend so every distinct point re-derives (sequential
        # issue order keeps executed/hit counters exact)
        import pathlib

        for p in pathlib.Path(payload["tmp"]).glob("*.json"):
            p.unlink()
        _serve_fire(payload, concurrency=1)

    # -- explore.render: the whole-system report renderer ------------------
    # Setup assembles one of each artifact family in-process (a curve
    # sweep, a trace + metrics dump off a private registry, a real lint
    # report, a cert verdict, two bench records); the timed fn is pure
    # rendering, so the instrumented pass records only the deterministic
    # explore.* counters the CI exact-match gate can hold.

    def _explore_setup():
        from ..analysis import check_source
        from ..frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES
        from ..kernels import KERNELS
        from . import explore as obs_explore
        from .core import Registry
        from .sinks import chrome_trace_dict, metrics_dict

        curves = obs_explore.compute_curves(kernels=("mgs",), s_values=(8, 16, 32))
        reg = Registry()
        with reg.span("explore.bench", phase="setup"):
            with reg.span("explore.bench/polyhedral"):
                pass
        reg.add("pebble.loads", 123)
        name = "mgs"
        k = KERNELS[name]
        rep, _ = check_source(
            FIGURE_SOURCES[name],
            name=name,
            params=k.default_params,
            shapes=FIGURE_SHAPE_EXPRS[name],
            dominant=k.dominant,
        )
        cert = {
            "schema": "iolb-cert-report/1",
            "kernel": name,
            "ok": True,
            "exit_code": 0,
            "checks_run": ["schema"],
            "findings": [],
        }
        bench = [
            {
                "created": f"2026-01-0{i}T00:00:00Z",
                "env": {"git_sha": f"sha{i}", "python": "3.11"},
                "results": {
                    "derive.mgs": {
                        "wall_s": {"median": 0.1 * i, "min": 0.09, "mad": 0.01},
                        "counters": {},
                    }
                },
            }
            for i in (1, 2)
        ]
        data = obs_explore.ExploreData(
            curves=curves,
            trace=chrome_trace_dict(reg),
            lint=rep.to_dict(),
            certs={name: cert},
            bench=bench,
            metrics={"bench": metrics_dict(reg)},
        )
        return {"data": data, "render": obs_explore.render_explore}

    def _explore_render(payload):
        html = payload["render"](payload["data"])
        if 'id="curves"' not in html or 'id="metrics"' not in html:
            raise RuntimeError("explore render dropped a section inside the bench")
        return len(html)

    from ..kernels import PAPER_KERNELS

    suite = [_derive(k) for k in PAPER_KERNELS]
    suite += [
        Benchmark(
            "simulate.belady",
            _belady,
            setup=_synthetic_trace,
            description=f"O(T log S) Belady engine, {_TRACE_EVENTS} events, S={_TRACE_S}",
        ),
        Benchmark(
            "simulate.lru",
            _lru,
            setup=_synthetic_trace,
            description=f"LRU engine, {_TRACE_EVENTS} events, S={_TRACE_S}",
        ),
        Benchmark(
            "tune.tiled_mgs",
            _tune,
            description="coarse tuner sweep, tiled MGS 16x12, S=96, memo off",
        ),
        Benchmark(
            "verify.smoke",
            _verify,
            description="seeded oracle battery, mgs, 2 trials, no fuzz",
        ),
        Benchmark(
            "lint.kernels",
            _lint,
            description="full static analysis of the five builtin kernel sources",
        ),
        Benchmark(
            "lint.deps",
            _lint_deps,
            description="dependence polyhedra for mgs/matmul/cholesky plus"
            " symbolic legality of the tiled_mgs B=2 schedule",
        ),
        Benchmark(
            "serve.hit_burst",
            _serve_hits,
            setup=_serve_setup,
            teardown=_serve_teardown,
            description="mixed 8-request burst against a warm result backend, 2 client threads",
        ),
        Benchmark(
            "serve.compute_burst",
            _serve_compute,
            setup=_serve_setup,
            teardown=_serve_teardown,
            description="mixed 8-request burst with the backend cleared first, sequential clients",
        ),
        Benchmark(
            "explore.render",
            _explore_render,
            setup=_explore_setup,
            description="whole-system explorer page over one of each artifact family",
        ),
    ]
    return suite


def select_benchmarks(
    suite: Sequence[Benchmark], names: Iterable[str]
) -> list[Benchmark]:
    """Filter a suite by exact names or group prefixes (``derive`` matches all
    ``derive.*``); unknown names raise with the available ones listed."""
    wanted = list(names)
    if not wanted:
        return list(suite)
    known = {b.name for b in suite} | {b.group for b in suite}
    unknown = [n for n in wanted if n not in known]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; available: "
            + ", ".join(sorted(b.name for b in suite))
        )
    return [b for b in suite if b.name in wanted or b.group in wanted]


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def run_benchmark(bench: Benchmark, *, repeats: int = 5, warmup: int = 1) -> BenchResult:
    """Warmup + ``repeats`` timed runs, then one instrumented profiling pass.

    The global obs registry is reset around the profiling pass (and left
    disabled and empty afterwards): the bench owns the registry for the
    duration of a suite run, which is why ``iolb bench`` takes no
    ``--profile`` flag of its own.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    payload = bench.setup() if bench.setup is not None else None
    try:
        for _ in range(warmup):
            bench.fn(payload)
        wall, cpu = [], []
        for _ in range(repeats):
            c0 = time.process_time()
            t0 = time.perf_counter()
            bench.fn(payload)
            wall.append(time.perf_counter() - t0)
            cpu.append(time.process_time() - c0)

        obs.disable()
        obs.reset()
        obs.enable()
        try:
            bench.fn(payload)
            counters = obs.counters()
            spans = obs.registry().aggregates()
        finally:
            obs.disable()
            obs.reset()
    finally:
        if bench.teardown is not None:
            bench.teardown(payload)

    return BenchResult(
        name=bench.name,
        repeats=repeats,
        wall_s=TimingStats.from_samples(wall),
        cpu_s=TimingStats.from_samples(cpu),
        counters=counters,
        spans=spans,
    )


def run_suite(
    suite: Sequence[Benchmark] | None = None,
    *,
    repeats: int = 5,
    warmup: int = 1,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every benchmark in ``suite`` (default: :func:`default_suite`)."""
    benches = list(suite) if suite is not None else default_suite()
    results = []
    for b in benches:
        if progress is not None:
            progress(b.name)
        results.append(run_benchmark(b, repeats=repeats, warmup=warmup))
    return results


def bench_record(
    results: Sequence[BenchResult],
    *,
    repeats: int,
    warmup: int,
    suite: str = DEFAULT_SUITE,
    meta: Mapping | None = None,
) -> dict:
    """Wrap results into the versioned ``iolb-bench/1`` record."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "created": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "env": env_fingerprint(),
        "config": {"repeats": repeats, "warmup": warmup},
        "meta": dict(meta or {}),
        "results": {r.name: r.to_dict() for r in results},
    }
