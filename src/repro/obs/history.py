"""On-disk performance history and regression detection (``iolb bench``).

One bench run produces one ``iolb-bench/1`` record (see
:mod:`repro.obs.bench`); this module owns everything that happens to the
record afterwards:

* **store** — ``append_entry`` files it under ``benchmarks/history/`` as
  ``<UTC stamp>-<git sha>.json``; ``load_history`` reads the directory back
  in chronological order (the trend the dashboard plots);
* **baseline resolution** — ``resolve_baseline`` accepts either a record
  file or a history directory (latest entry of the matching suite wins);
* **regression detection** — ``compare_records`` lines a current record up
  against a baseline: timings are compared median-vs-median with a
  MAD-derived noise floor (robust to scheduler outliers, unlike mean/σ),
  work counters are compared **exactly** so algorithmic drift is flagged
  separately from machine noise.  Records from different machines skip the
  timing comparison entirely — a wall-clock delta across machines is not a
  regression, it is a different machine.

Stdlib only; importable without the rest of :mod:`repro`.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from .envinfo import describe_env, env_comparable

__all__ = [
    "BENCH_SCHEMA",
    "check_bench_schema",
    "load_record",
    "entry_filename",
    "append_entry",
    "load_history",
    "latest_entry",
    "resolve_baseline",
    "Delta",
    "CompareReport",
    "compare_records",
]

#: schema tag stamped into every bench record (bump on breaking changes)
BENCH_SCHEMA = "iolb-bench/1"

#: default suite name for records produced by the standard `iolb bench` run
DEFAULT_SUITE = "default"


def check_bench_schema(record: Mapping, source: str = "record") -> None:
    """Raise ``ValueError`` unless ``record`` looks like an iolb bench record.

    Only the schema tag and the ``results`` mapping are required; ``env``,
    ``suite``, per-result ``cpu_s``/``counters``/``spans`` are
    accept-but-not-require so hand-migrated or trimmed records still load.
    """
    if not isinstance(record, Mapping) or record.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{source}: not an {BENCH_SCHEMA!r} record"
            f" (schema={record.get('schema') if isinstance(record, Mapping) else None!r})"
        )
    results = record.get("results")
    if not isinstance(results, Mapping):
        raise ValueError(f"{source}: missing 'results' mapping")
    for name, row in results.items():
        if not isinstance(row, Mapping) or "wall_s" not in row:
            raise ValueError(f"{source}: result {name!r} has no 'wall_s' stats")


def load_record(path: str | os.PathLike) -> dict:
    """Read and schema-check one record file."""
    with open(path) as fh:
        record = json.load(fh)
    check_bench_schema(record, source=str(path))
    return record


def entry_filename(record: Mapping) -> str:
    """Canonical history filename: ``<created stamp>-<sha or suite>.json``."""
    created = str(record.get("created", "unknown"))
    stamp = re.sub(r"[^0-9TZ]", "", created) or "unknown"
    tag = (record.get("env") or {}).get("git_sha") or record.get("suite") or "run"
    return f"{stamp}-{tag}.json"


def append_entry(record: Mapping, history_dir: str | os.PathLike) -> Path:
    """File ``record`` into ``history_dir`` (created if needed); returns the path.

    The append is **atomic**: the record is fully written to a temp file in
    the same directory and then hard-linked into place, so a crash or a
    concurrent bench run mid-write can never leave a half-written record to
    poison ``resolve_baseline``/``compare_records`` (the same tmp +
    rename discipline as ``MemoCache.put``).  Collisions (same second, same
    sha — including two writers racing on the same name) get a ``-2``,
    ``-3``, … suffix rather than clobbering an existing entry — history is
    append-only, and ``os.link``'s create-exclusive semantics make the
    existence check and the publish one atomic step.
    """
    check_bench_schema(record)
    d = Path(history_dir)
    d.mkdir(parents=True, exist_ok=True)
    base = entry_filename(record)
    stem = base[: -len(".json")]
    tmp = d / f".{stem}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    path = d / base
    n = 2
    try:
        while True:
            try:
                os.link(tmp, path)
                break
            except FileExistsError:
                path = d / f"{stem}-{n}.json"
                n += 1
            except OSError:
                # filesystem without hard links: fall back to an atomic
                # rename (still never a partial record, but last-writer-wins
                # on a same-instant name collision)
                os.replace(tmp, path)
                return path
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
    return path


def load_history(
    history_dir: str | os.PathLike, suite: str | None = None
) -> list[dict]:
    """Every record in ``history_dir``, oldest first; optionally one suite.

    Files that fail to parse or fail the schema check are skipped with a
    :class:`UserWarning` naming the file (a history directory may hold
    notes, partial downloads, or records damaged before appends became
    atomic) — loading never raises on a bad entry, and regression gates
    should resolve their baseline explicitly if strictness matters.
    """
    d = Path(history_dir)
    if not d.is_dir():
        return []
    out = []
    for p in sorted(d.glob("*.json")):
        try:
            rec = load_record(p)
        except (OSError, ValueError) as e:
            warnings.warn(
                f"skipping unparseable history record {p}: {e}", stacklevel=2
            )
            continue
        if suite is not None and rec.get("suite", DEFAULT_SUITE) != suite:
            continue
        out.append(rec)
    out.sort(key=lambda r: str(r.get("created", "")))
    return out


def latest_entry(
    history_dir: str | os.PathLike, suite: str | None = None
) -> dict | None:
    """The newest record of ``suite`` in the directory, or None."""
    hist = load_history(history_dir, suite=suite)
    return hist[-1] if hist else None


def resolve_baseline(path: str | os.PathLike, suite: str | None = None) -> dict:
    """A baseline from either a record file or a history directory."""
    p = Path(path)
    if p.is_file():
        return load_record(p)
    rec = latest_entry(p, suite=suite)
    if rec is None:
        raise ValueError(
            f"{p}: no {suite or 'bench'} history entries to use as baseline"
        )
    return rec


# ---------------------------------------------------------------------------
# regression detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One compared quantity of one benchmark."""

    benchmark: str
    kind: str  # "timing" | "counter"
    metric: str  # "wall median" or the counter name
    baseline: float
    current: float
    regressed: bool
    note: str = ""

    def pct(self) -> str:
        if self.baseline == 0:
            return "n/a" if self.current == 0 else "new"
        return f"{(self.current - self.baseline) / self.baseline * 100:+.1f}%"


@dataclass
class CompareReport:
    """The outcome of one baseline-vs-current comparison."""

    deltas: list[Delta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    timings_compared: bool = True

    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regressed]

    def ok(self) -> bool:
        return not self.regressions()

    def summary(self) -> str:
        from .stats import _table  # sibling helper, stdlib only

        parts = list(self.notes)
        timing = [d for d in self.deltas if d.kind == "timing"]
        if timing:
            parts.append(
                _table(
                    ["benchmark", "baseline", "current", "delta", "verdict"],
                    [
                        [
                            d.benchmark,
                            f"{d.baseline:.4f}s",
                            f"{d.current:.4f}s",
                            d.pct(),
                            ("REGRESSED" if d.regressed else "ok") + (f" ({d.note})" if d.note else ""),
                        ]
                        for d in timing
                    ],
                    title="wall-time medians (baseline -> current):",
                )
            )
        drift = [d for d in self.deltas if d.kind == "counter"]
        if drift:
            parts.append(
                _table(
                    ["benchmark", "counter", "baseline", "current", "delta"],
                    [
                        [d.benchmark, d.metric, int(d.baseline), int(d.current), d.pct()]
                        for d in drift
                    ],
                    title="work-counter drift (exact-match check):",
                )
            )
        n = len(self.regressions())
        parts.append(
            "regression check: ok"
            if n == 0
            else f"regression check: {n} regression(s) detected"
        )
        return "\n\n".join(parts)


def _median_of(row: Mapping, key: str) -> float | None:
    stats = row.get(key)
    if isinstance(stats, Mapping) and "median" in stats:
        return float(stats["median"])
    return None


def _mad_of(row: Mapping, key: str) -> float:
    stats = row.get(key)
    if isinstance(stats, Mapping):
        return float(stats.get("mad", 0.0))
    return 0.0


def compare_records(
    baseline: Mapping,
    current: Mapping,
    *,
    threshold_pct: float = 20.0,
    mad_k: float = 4.0,
    counters_only: bool = False,
) -> CompareReport:
    """Robust regression check of ``current`` against ``baseline``.

    A benchmark's wall time regresses when its median grew by more than
    ``threshold_pct`` percent **and** the growth clears a noise floor of
    ``mad_k`` times the larger of the two runs' MADs (median absolute
    deviation; both conditions must hold so neither a noisy fast benchmark
    nor a glacial-but-stable one slips through).  Work counters must match
    exactly; any difference — including a counter that appeared or vanished
    — is algorithmic drift and is reported regardless of thresholds.

    ``counters_only=True`` (or incomparable environment fingerprints) skips
    the timing comparison: exact counters are the only machine-portable
    signal, which is what a cross-machine CI gate should check.

    Raises ``ValueError`` when the records share no benchmark — comparing
    disjoint suites would be a vacuous (and therefore misleading) pass.
    """
    check_bench_schema(baseline, "baseline")
    check_bench_schema(current, "current")
    res_a, res_b = baseline["results"], current["results"]
    common = [name for name in res_b if name in res_a]
    if not common:
        raise ValueError(
            "baseline and current records share no benchmark"
            f" (baseline: {sorted(res_a)}, current: {sorted(res_b)})"
        )
    report = CompareReport()
    same_env = env_comparable(baseline.get("env"), current.get("env"))
    compare_timings = not counters_only and same_env
    report.timings_compared = compare_timings
    if not counters_only and not same_env:
        report.notes.append(
            "environments differ — timing comparison skipped, counters only\n"
            f"  baseline: {describe_env(baseline.get('env'))}\n"
            f"  current:  {describe_env(current.get('env'))}"
        )
    missing = sorted(set(res_a) - set(res_b))
    if missing:
        report.notes.append(
            f"note: {len(missing)} baseline benchmark(s) not in current run: "
            + ", ".join(missing)
        )
    for name in common:
        row_a, row_b = res_a[name], res_b[name]
        if compare_timings:
            med_a = _median_of(row_a, "wall_s")
            med_b = _median_of(row_b, "wall_s")
            if med_a is not None and med_b is not None:
                floor = mad_k * max(_mad_of(row_a, "wall_s"), _mad_of(row_b, "wall_s"))
                grew_pct = med_a > 0 and (med_b - med_a) / med_a * 100 > threshold_pct
                regressed = grew_pct and (med_b - med_a) > floor
                note = ""
                if grew_pct and not regressed:
                    note = "within noise floor"
                report.deltas.append(
                    Delta(name, "timing", "wall median", med_a, med_b, regressed, note)
                )
        ca = row_a.get("counters") or {}
        cb = row_b.get("counters") or {}
        for cname in sorted(set(ca) | set(cb)):
            va, vb = ca.get(cname, 0), cb.get(cname, 0)
            if va != vb:
                report.deltas.append(
                    Delta(name, "counter", cname, va, vb, regressed=True)
                )
    return report
