"""Environment fingerprint shared by metrics dumps and bench records.

A performance number without its machine is noise: the fingerprint stamps
every ``iolb-metrics/1`` and ``iolb-bench/1`` artifact with the interpreter,
platform, CPU count, and (best effort) git commit that produced it, so two
artifacts can be told apart *before* their timings are compared.  Regression
checks use it to decide whether a timing delta is even meaningful — records
from different machines compare counters, not wall clocks.

Stdlib only, like the rest of :mod:`repro.obs`.  The git lookup shells out
once per process (cached) and degrades to ``None`` outside a checkout or
without a ``git`` binary.
"""

from __future__ import annotations

import functools
import os
import platform
import subprocess
from pathlib import Path
from typing import Mapping

__all__ = ["env_fingerprint", "describe_env", "env_comparable"]

#: fingerprint keys whose values must match for wall-clock comparison to
#: mean anything (cpu_count folded in: a different core count changes the
#: process-pool and scheduler behaviour even on the same interpreter)
_TIMING_KEYS = ("python", "implementation", "platform", "machine", "cpu_count")


@functools.lru_cache(maxsize=1)
def _git_sha() -> str | None:
    """Short commit sha of the checkout containing this file, else None."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def env_fingerprint() -> dict:
    """The environment block stamped into dumps: a fresh, JSON-safe dict."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def describe_env(env: Mapping | None) -> str:
    """One human line for report headers: ``cpython 3.11 · linux · 8 cpus @ abc123``."""
    if not env:
        return "(no environment recorded)"
    bits = [
        f"{env.get('implementation', '?')} {env.get('python', '?')}".lower(),
        str(env.get("platform", "?")),
        f"{env.get('cpu_count', '?')} cpus",
    ]
    if env.get("git_sha"):
        bits.append(f"@ {env['git_sha']}")
    return " · ".join(bits)


def env_comparable(a: Mapping | None, b: Mapping | None) -> bool:
    """Whether two fingerprints describe the same machine for *timing* purposes.

    Missing fingerprints (old artifacts) are conservatively incomparable.
    The git sha is deliberately ignored — comparing two commits on one
    machine is exactly the regression-check use case.
    """
    if not a or not b:
        return False
    return all(a.get(k) == b.get(k) for k in _TIMING_KEYS)
