"""``iolb explore`` — one self-contained HTML report over the whole system.

The pipeline emits five versioned JSON artifact families; this module
joins them into a single zero-dependency HTML document (inline SVG/CSS,
no scripts, no external fetches) that works as a CI artifact, an e-mail
attachment, and — wired into :mod:`repro.serve` — the live ``GET /status``
page of the derivation service.

Artifact-to-section mapping:

========================  =====================================================
artifact                  section
========================  =====================================================
``iolb-curves/1``         bound-vs-measured curves per kernel (hourglass vs
                          classical vs simulated misses across S); computed
                          in-process by :func:`compute_curves` or loaded
``trace_event`` JSON      per-phase derivation flamegraph (``--trace-out``)
``iolb-lint/1``           lint diagnostics browser with source spans
``iolb-cert-report/1``    certificate check outcomes per kernel
``iolb-bench/1``          bench history trends (the PR-4 dashboard panels)
``iolb-metrics/1``        metrics summary: gauges, hottest spans, counters
========================  =====================================================

Every section renders a placeholder when its artifact is absent; a
*present-but-broken* artifact is recorded in :attr:`ExploreData.problems`
and surfaced in the page header — and ``iolb explore --check-inputs``
turns that list into a nonzero exit instead of rendering a partial page
silently.

This module is stdlib-only at import time (like the rest of
:mod:`repro.obs`); :func:`compute_curves` lazily imports the engine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from . import core as obs
from ._html import (
    Raw,
    badge,
    details,
    empty_note,
    esc,
    fmt_num,
    fmt_us,
    nav,
    page,
    section,
    stat_tile,
    table,
)
from ._svg import flamegraph, legend, line_chart
from .dashboard import render_trend_sections
from .sinks import METRICS_SCHEMA
from .stats import check_schema as check_metrics_schema

__all__ = [
    "CURVES_SCHEMA",
    "SECTIONS",
    "ExploreData",
    "check_curves_schema",
    "load_inputs",
    "compute_curves",
    "render_explore",
    "render_status",
]

#: schema tag of the bound-vs-measured curve artifact `iolb explore` emits
CURVES_SCHEMA = "iolb-curves/1"

#: schema tag of certificate check reports (redeclared: this module reads
#: the artifact, it must not import the checker to know its name)
_CERT_REPORT_SCHEMA = "iolb-cert-report/1"
_LINT_SCHEMA = "iolb-lint/1"

#: the six report sections, in page order: (anchor, title)
SECTIONS: tuple[tuple[str, str], ...] = (
    ("curves", "Bound vs measured"),
    ("flame", "Derivation profile"),
    ("lint", "Lint diagnostics"),
    ("certs", "Certificates"),
    ("bench", "Bench trends"),
    ("metrics", "Metrics"),
)


@dataclass
class ExploreData:
    """Everything one explorer page is rendered from.

    Any field may be empty — the renderer degrades to a placeholder per
    section.  ``problems`` records artifacts that were named but could not
    be loaded or failed their schema check; the page surfaces them and
    ``--check-inputs`` gates on them.
    """

    curves: Mapping | None = None
    trace: Mapping | None = None
    lint: Mapping | None = None
    certs: dict[str, Mapping] = field(default_factory=dict)
    bench: list[Mapping] = field(default_factory=list)
    metrics: dict[str, Mapping] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    def loaded_count(self) -> int:
        return (
            (1 if self.curves else 0)
            + (1 if self.trace else 0)
            + (1 if self.lint else 0)
            + len(self.certs)
            + len(self.bench)
            + len(self.metrics)
        )


# ---------------------------------------------------------------------------
# loading + validation
# ---------------------------------------------------------------------------


def _read_json(path: str | os.PathLike, problems: list[str]) -> Mapping | None:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as e:
        problems.append(f"{path}: unreadable ({e})")
        return None
    if not isinstance(doc, Mapping):
        problems.append(f"{path}: not a JSON object")
        return None
    return doc


def check_curves_schema(doc: Mapping, source: str = "curves") -> None:
    """Raise ``ValueError`` unless ``doc`` is an ``iolb-curves/1`` artifact."""
    if doc.get("schema") != CURVES_SCHEMA:
        raise ValueError(
            f"{source}: not an {CURVES_SCHEMA!r} artifact (schema={doc.get('schema')!r})"
        )
    kernels = doc.get("kernels")
    if not isinstance(kernels, Mapping):
        raise ValueError(f"{source}: missing 'kernels' mapping")
    for name, entry in kernels.items():
        pts = entry.get("points") if isinstance(entry, Mapping) else None
        if not isinstance(pts, list):
            raise ValueError(f"{source}: kernel {name!r} has no 'points' list")
        for p in pts:
            if not isinstance(p, Mapping) or "S" not in p or "bounds" not in p:
                raise ValueError(f"{source}: kernel {name!r} has a malformed point")


def load_inputs(
    *,
    metrics: Sequence[str | os.PathLike] = (),
    lint: str | os.PathLike | None = None,
    certs: Sequence[str | os.PathLike] = (),
    trace: str | os.PathLike | None = None,
    curves: str | os.PathLike | None = None,
    bench_history: str | os.PathLike | None = None,
) -> ExploreData:
    """Read and schema-check every named artifact into an :class:`ExploreData`.

    Nothing raises: a missing/corrupt/mismatched-version artifact lands in
    ``problems`` (one line naming the file and the reason) and its section
    renders as a placeholder.  Callers that must not render a partial page
    (``--check-inputs``, CI) gate on ``problems`` being empty.
    """
    data = ExploreData()

    for path in metrics:
        doc = _read_json(path, data.problems)
        if doc is None:
            continue
        try:
            check_metrics_schema(doc, str(path))
        except ValueError as e:
            data.problems.append(str(e))
            continue
        label = Path(path).stem
        n = 2
        while label in data.metrics:  # two dumps with one stem: keep both
            label = f"{Path(path).stem}-{n}"
            n += 1
        data.metrics[label] = doc

    if lint is not None:
        doc = _read_json(lint, data.problems)
        if doc is not None:
            try:
                # lazy: repro.analysis drags the frontend in; explore must
                # stay stdlib-importable for the serve status path
                from ..analysis import check_lint_schema

                check_lint_schema(doc)
                data.lint = doc
            except ValueError as e:
                data.problems.append(f"{lint}: {e}")

    for path in certs:
        doc = _read_json(path, data.problems)
        if doc is None:
            continue
        if doc.get("schema") != _CERT_REPORT_SCHEMA:
            data.problems.append(
                f"{path}: not an {_CERT_REPORT_SCHEMA!r} report"
                f" (schema={doc.get('schema')!r})"
            )
            continue
        if not isinstance(doc.get("findings"), list) or "ok" not in doc:
            data.problems.append(f"{path}: malformed cert report (findings/ok)")
            continue
        name = str(doc.get("kernel") or Path(path).stem)
        data.certs[name] = doc

    if trace is not None:
        doc = _read_json(trace, data.problems)
        if doc is not None:
            if not isinstance(doc.get("traceEvents"), list):
                data.problems.append(f"{trace}: no 'traceEvents' list (not a Chrome trace)")
            else:
                data.trace = doc

    if curves is not None:
        doc = _read_json(curves, data.problems)
        if doc is not None:
            try:
                check_curves_schema(doc, str(curves))
                data.curves = doc
            except ValueError as e:
                data.problems.append(str(e))

    if bench_history is not None:
        from .history import load_record  # stdlib sibling

        d = Path(bench_history)
        paths = sorted(d.glob("*.json")) if d.is_dir() else [d] if d.exists() else []
        if not paths:
            data.problems.append(f"{bench_history}: no bench history records found")
        records = []
        for p in paths:
            try:
                records.append(load_record(p))
            except (OSError, ValueError) as e:
                data.problems.append(f"{p}: {e}")
        records.sort(key=lambda r: str(r.get("created", "")))
        data.bench = records

    obs.add("explore.artifacts_loaded", data.loaded_count())
    return data


# ---------------------------------------------------------------------------
# bound-vs-measured curves
# ---------------------------------------------------------------------------

#: default cache-size sweep for the curve section
DEFAULT_S_VALUES: tuple[int, ...] = (8, 16, 32, 64, 128)


def compute_curves(
    kernels: Sequence[str] | None = None,
    s_values: Sequence[int] = DEFAULT_S_VALUES,
    params: Mapping[str, Mapping[str, int]] | None = None,
) -> dict:
    """Derive + simulate each kernel across S into an ``iolb-curves/1`` doc.

    Per kernel and cache size S: the classical K-partition bound, the best
    hourglass-family bound (tightened / small-cache / split), the overall
    best bound with its binding method, and the *measured* pebble-game
    loads of the program order under Belady and LRU eviction — the
    bound-vs-measured sandwich the paper's evaluation (and IOLB's) is
    judged by.  Instances default to each kernel's ``default_params``.
    """
    from ..bounds import derive
    from ..cdag import build_cdag
    from ..ir import Tracer
    from ..kernels import PAPER_KERNELS, get_kernel
    from ..pebble import play_schedule

    names = list(kernels) if kernels else list(PAPER_KERNELS)
    out: dict = {"schema": CURVES_SCHEMA, "s_values": [int(s) for s in s_values], "kernels": {}}
    for name in names:
        kern = get_kernel(name)
        inst = dict((params or {}).get(name) or kern.default_params)
        with obs.span("explore.curves", kernel=name):
            report = derive(kern)
            g = build_cdag(kern.program, inst)
            t = Tracer()
            kern.program.runner(dict(inst), t)
            points = []
            for s in s_values:
                env = {**inst, "S": int(s)}
                bounds: dict[str, float] = {}
                if report.classical is not None:
                    try:
                        bounds["classical"] = round(report.classical.evaluate(env), 3)
                    except (ZeroDivisionError, KeyError):
                        pass
                hg_candidates = [report.hourglass, report.hourglass_small_cache]
                hg_candidates += list(report.hourglass_split)
                hg_best = None
                for b in hg_candidates:
                    if b is None:
                        continue
                    try:
                        v = b.evaluate(env)
                    except (ZeroDivisionError, KeyError):
                        continue
                    if hg_best is None or v > hg_best:
                        hg_best = v
                if hg_best is not None:
                    bounds["hourglass"] = round(hg_best, 3)
                point = {
                    "S": int(s),
                    "bounds": bounds,
                    "measured_belady": play_schedule(g, t.schedule, int(s), "belady").loads,
                    "measured_lru": play_schedule(g, t.schedule, int(s), "lru").loads,
                }
                try:
                    best_b, best_v = report.best(env)
                except ValueError:
                    pass  # nothing evaluable at this S: curves only
                else:
                    point["best"] = round(best_v, 3)
                    point["best_method"] = best_b.method
                points.append(point)
        obs.add("explore.curve_points", len(points))
        out["kernels"][name] = {
            "params": {k: int(v) for k, v in inst.items()},
            "dominant": kern.dominant,
            "points": points,
        }
    return out


# ---------------------------------------------------------------------------
# section renderers
# ---------------------------------------------------------------------------


def _sec_curves(curves: Mapping | None) -> Raw:
    if not curves or not curves.get("kernels"):
        return section(
            "curves",
            "Bound vs measured",
            str(
                empty_note(
                    "no curve data — run `iolb explore` without --no-curves, or"
                    " pass --curves curves.json"
                )
            ),
        )
    blocks: list[str] = []
    for name, entry in curves["kernels"].items():
        pts = entry.get("points", [])
        series, labels, dashes = [], [], []

        def add_series(label: str, xs_ys, dashed: bool) -> None:
            if xs_ys:
                series.append({"label": label, "points": xs_ys, "dashed": dashed})
                labels.append(label)
                dashes.append(dashed)

        add_series(
            "measured (Belady)",
            [(p["S"], p["measured_belady"]) for p in pts if "measured_belady" in p],
            False,
        )
        add_series(
            "measured (LRU)",
            [(p["S"], p["measured_lru"]) for p in pts if "measured_lru" in p],
            False,
        )
        add_series(
            "hourglass bound",
            [(p["S"], p["bounds"]["hourglass"]) for p in pts if "hourglass" in p.get("bounds", {})],
            True,
        )
        add_series(
            "classical bound",
            [(p["S"], p["bounds"]["classical"]) for p in pts if "classical" in p.get("bounds", {})],
            True,
        )
        rows = []
        for p in pts:
            lb = p.get("best", 0.0)
            meas = p.get("measured_belady", 0)
            rows.append(
                [
                    p["S"],
                    p.get("best_method", "?"),
                    fmt_num(lb),
                    fmt_num(meas),
                    f"{meas / lb:.2f}x" if lb else "n/a",
                ]
            )
        param_txt = ", ".join(f"{k}={v}" for k, v in entry.get("params", {}).items())
        blocks.append(
            f"<h3>{esc(name)}</h3>"
            f'<p class="desc">at {esc(param_txt)}'
            + (f" · dominant {esc(entry['dominant'])}" if entry.get("dominant") else "")
            + "</p>"
            + str(line_chart(series, x_label="cache size S", y_label="loads"))
            + str(legend(labels, dashes))
            + str(
                details(
                    "gap table",
                    str(table(["S", "binding method", "best bound", "measured", "gap"], rows)),
                )
            )
        )
    return section(
        "curves",
        "Bound vs measured",
        "".join(blocks),
        subtitle=(
            "derived lower bounds vs simulated pebble-game misses across cache"
            " sizes (log-log); dashed = derived bound, solid = measured"
        ),
    )


def _sec_flame(trace: Mapping | None) -> Raw:
    if not trace:
        return section(
            "flame",
            "Derivation profile",
            str(empty_note("no Chrome trace — produce one with --trace-out and pass --trace")),
        )
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    totals: dict[str, dict[str, float]] = {}
    for e in events:
        row = totals.setdefault(str(e.get("name", "?")), {"count": 0, "dur": 0.0})
        row["count"] += 1
        row["dur"] += float(e.get("dur", 0.0))
    top = sorted(totals.items(), key=lambda kv: -kv[1]["dur"])[:12]
    rows = [
        [Raw(f'<span class="mono">{esc(name)}</span>'), int(row["count"]), fmt_us(row["dur"])]
        for name, row in top
    ]
    return section(
        "flame",
        "Derivation profile",
        str(flamegraph(trace))
        + str(details("hottest spans", str(table(["span", "count", "total wall"], rows)))),
        subtitle=f"{len(events)} spans from the Chrome trace_event artifact",
    )


_SEV_BADGE = {"error": "bad", "warning": "warn", "info": ""}


def _lint_reports(lint: Mapping) -> dict[str, Mapping]:
    if "reports" in lint:
        return dict(lint["reports"])
    return {str(lint.get("program", "?")): lint}


def _sec_lint(lint: Mapping | None) -> Raw:
    if not lint:
        return section(
            "lint",
            "Lint diagnostics",
            str(empty_note("no lint report — generate one with `iolb lint all --json`")),
        )
    blocks: list[str] = []
    for name, rep in _lint_reports(lint).items():
        counts = rep.get("summary", {})
        chips = " ".join(
            str(badge(f"{counts.get(sev, 0)} {sev}", _SEV_BADGE[sev]))
            for sev in ("error", "warning", "info")
        )
        rows = []
        for d in rep.get("diagnostics", []):
            span = d.get("span")
            where = f"{span['line']}:{span['col']}" if span else "—"
            msg = esc(d.get("message", ""))
            if d.get("hint"):
                msg += f'<br><span class="desc">hint: {esc(d["hint"])}</span>'
            rows.append(
                [
                    badge(d.get("severity", "?"), _SEV_BADGE.get(d.get("severity"), "")),
                    Raw(f'<span class="mono">{esc(d.get("code", "?"))}</span>'),
                    Raw(f'<span class="mono">{esc(d.get("stmt") or "—")}</span>'),
                    where,
                    Raw(msg),
                ]
            )
        body = (
            str(table(["severity", "code", "stmt", "span", "message"], rows))
            if rows
            else str(empty_note("clean — no diagnostics"))
        )
        blocks.append(f"<h3>{esc(name)}</h3><p>{chips}</p>{body}")
    return section(
        "lint",
        "Lint diagnostics",
        "".join(blocks),
        subtitle="static-analysis findings (A001–A008) with source spans — iolb-lint/1",
    )


def _sec_certs(certs: Mapping[str, Mapping]) -> Raw:
    if not certs:
        return section(
            "certs",
            "Certificates",
            str(
                empty_note(
                    "no certificate check reports — generate with"
                    " `iolb derive K --cert c.json && iolb cert check c.json --json r.json`"
                )
            ),
        )
    rows = []
    for name in sorted(certs):
        rep = certs[name]
        ok = bool(rep.get("ok"))
        findings = rep.get("findings", [])
        notes = (
            "; ".join(f"[{f.get('code')}] {f.get('message', '')}" for f in findings[:4])
            + (" …" if len(findings) > 4 else "")
            if findings
            else "—"
        )
        rows.append(
            [
                Raw(f'<span class="mono">{esc(name)}</span>'),
                badge("accepted" if ok else "REJECTED", "ok" if ok else "bad"),
                len(rep.get("checks_run", [])),
                len(findings),
                notes,
            ]
        )
    return section(
        "certs",
        "Certificates",
        str(table(["kernel", "verdict", "checks run", "findings", "notes"], rows)),
        subtitle="independent re-check outcomes of the iolb-cert/1 proof objects",
    )


def _sec_bench(records: Sequence[Mapping]) -> Raw:
    if not records:
        return section(
            "bench",
            "Bench trends",
            str(empty_note("no bench history — run `iolb bench` to start one")),
        )
    return section(
        "bench",
        "Bench trends",
        str(render_trend_sections(records)),
        subtitle=f"{len(records)} iolb-bench/1 record(s); median wall seconds per entry",
    )


def _sec_metrics(metrics: Mapping[str, Mapping]) -> Raw:
    if not metrics:
        return section(
            "metrics",
            "Metrics",
            str(empty_note("no metrics dumps — produce one with --metrics-json and pass --metrics")),
        )
    blocks: list[str] = []
    for label, dump in metrics.items():
        meta = dump.get("meta", {})
        env = dump.get("env") or {}
        gauges = dump.get("gauges", {})
        counters = dump.get("counters", {})
        agg = dump.get("aggregates", {})
        tiles = "".join(
            str(stat_tile(name, f"{gauges[name]:g}" if isinstance(gauges[name], float) else str(gauges[name])))
            for name in sorted(gauges)
        )
        top = sorted(agg.items(), key=lambda kv: -kv[1]["wall_us"])[:10]
        spans_tbl = (
            str(
                table(
                    ["span path", "count", "wall", "cpu"],
                    [
                        [
                            Raw(f'<span class="mono">{esc(p)}</span>'),
                            int(row["count"]),
                            fmt_us(row["wall_us"]),
                            fmt_us(row["cpu_us"]),
                        ]
                        for p, row in top
                    ],
                )
            )
            if top
            else str(empty_note("no spans recorded"))
        )
        counter_rows = [
            [Raw(f'<span class="mono">{esc(n)}</span>'), fmt_num(counters[n])]
            for n in sorted(counters)
        ]
        blocks.append(
            f"<h3>{esc(label)}</h3>"
            f'<p class="desc">command: {esc(meta.get("command", "?"))}'
            f' · python {esc(env.get("python", "?"))}</p>'
            + (f'<div class="tiles">{tiles}</div>' if tiles else "")
            + spans_tbl
            + (
                str(details(f"{len(counter_rows)} counters", str(table(["counter", "value"], counter_rows))))
                if counter_rows
                else ""
            )
        )
    return section(
        "metrics",
        "Metrics",
        "".join(blocks),
        subtitle="iolb-metrics/1 dumps: gauges, hottest span paths, work counters",
    )


# ---------------------------------------------------------------------------
# the page
# ---------------------------------------------------------------------------


def render_explore(
    data: ExploreData,
    *,
    title: str = "iolb explore — system report",
    live: Mapping | None = None,
    refresh_s: int | None = None,
    generated: str = "",
) -> str:
    """The explorer page: six sections, nav, problems banner, no externals.

    ``live`` is the compact operational summary of a running ``iolb serve``
    (its ``/v1/stats`` body); when given, a service tile row leads the page
    and ``refresh_s`` usually accompanies it so the browser re-pulls
    ``/status`` with plain ``<meta http-equiv=refresh>`` — no scripts.
    """
    with obs.span("explore.render"):
        parts: list[str] = [str(nav(SECTIONS))]

        if data.problems:
            items = "".join(f"<li>{esc(p)}</li>" for p in data.problems)
            parts.append(
                '<section class="panel"><h2>'
                + str(badge(f"{len(data.problems)} artifact problem(s)", "warn"))
                + f"</h2><ul>{items}</ul></section>"
            )

        if live is not None:
            hit_rate = live.get("hit_rate", 0.0)
            tiles = [
                stat_tile("requests", fmt_num(live.get("requests", 0))),
                stat_tile("executed", fmt_num(live.get("executed", 0))),
                stat_tile("hit rate", f"{hit_rate:.2%}" if isinstance(hit_rate, float) else str(hit_rate)),
                stat_tile("p50 latency", f"{live.get('latency_p50_ms', 0.0):g}ms"),
                stat_tile("p99 latency", f"{live.get('latency_p99_ms', 0.0):g}ms"),
                stat_tile("queue depth", fmt_num(live.get("queue_depth", 0))),
                stat_tile("in flight", fmt_num(live.get("inflight", 0))),
                stat_tile("errors", fmt_num(live.get("errors", 0))),
                stat_tile("uptime", f"{live.get('uptime_s', 0.0):g}s"),
                stat_tile(
                    "workers",
                    str(live.get("workers", 0)) or "inline",
                    note=str(live.get("backend") or "backend off"),
                ),
            ]
            parts.append(
                '<section class="panel" id="service"><h2>Service</h2>'
                f'<div class="tiles">{"".join(str(t) for t in tiles)}</div></section>'
            )

        parts.append(str(_sec_curves(data.curves)))
        parts.append(str(_sec_flame(data.trace)))
        parts.append(str(_sec_lint(data.lint)))
        parts.append(str(_sec_certs(data.certs)))
        parts.append(str(_sec_bench(data.bench)))
        parts.append(str(_sec_metrics(data.metrics)))
        obs.add("explore.sections_rendered", len(SECTIONS))

        loaded = data.loaded_count()
        subtitle = f"{loaded} artifact(s)"
        if generated:
            subtitle += f" · {esc(generated)}"
        return page(
            title,
            "".join(parts),
            subtitle=subtitle,
            footer=(
                "self-contained report — no scripts, no external resources; "
                "generated by <code>iolb explore</code> over "
                f"{esc(METRICS_SCHEMA)}, iolb-bench/1, {esc(_LINT_SCHEMA)}, "
                f"{esc(_CERT_REPORT_SCHEMA)}, {esc(CURVES_SCHEMA)} and Chrome"
                " trace_event artifacts"
            ),
            refresh_s=refresh_s,
        )


def render_status(
    metrics: Mapping,
    stats: Mapping,
    *,
    title: str = "iolb serve — status",
    refresh_s: int | None = 5,
) -> str:
    """The live service status page (``GET /status`` of ``iolb serve``).

    Same renderer as the static report, fed from the server's private
    always-on registry: the ``iolb-metrics/1`` dump becomes the metrics
    section (hit-rate / latency gauges included) and the compact stats
    summary becomes the leading tile row.  Meta-refresh keeps it live
    without any script or external resource.
    """
    data = ExploreData(metrics={"live": metrics})
    return render_explore(
        data,
        title=title,
        live=stats,
        refresh_s=refresh_s,
        generated="live service telemetry",
    )
