"""Span tracer and counter registry (the heart of :mod:`repro.obs`).

Everything lives in one process-global :class:`Registry`:

* **spans** — hierarchical timed regions.  ``with span("bounds.derive"):``
  records wall time (``perf_counter``) and per-thread CPU time
  (``thread_time``); nesting is tracked per thread via a thread-local
  stack, so concurrent threads each build their own span tree and the
  records merge safely under one lock.
* **counters** — named monotonic integers (``add(name, n)`` with n >= 0).
* **gauges** — named last-write-wins numbers (``gauge(name, value)``).

Instrumentation is **disabled by default** and must be no-op cheap when
off: ``span()`` returns a shared stateless null context manager, ``add``
and ``gauge`` return after a single flag test, and hot loops in the rest
of the code base only *aggregate* into the registry after the loop (one
``add`` per simulation, never one per event).  The micro-bench
``benchmarks/test_bench_obs_overhead.py`` pins the disabled-mode overhead
of the trace engine at < 5%.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "SpanRecord",
    "Registry",
    "enable",
    "disable",
    "enabled",
    "reset",
    "registry",
    "span",
    "add",
    "gauge",
    "counters",
    "gauges",
    "spans",
    "merge_counters",
    "capture_counters",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: identity, position in the tree, and timings.

    ``start_us``/``wall_us``/``cpu_us`` are microseconds; ``start_us`` is
    relative to the registry epoch (its creation or last reset), which puts
    every span of one run on a common timeline — exactly what the Chrome
    ``trace_event`` format wants for ``ts``.
    """

    name: str
    path: str  # "parent/child/..." chain of span names, per thread
    depth: int
    start_us: float
    wall_us: float
    cpu_us: float
    tid: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled.

    Stateless, hence safe to share between threads and to re-enter.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created by :func:`span`, recorded on ``__exit__``.

    The record is appended even when the body raises (exception safety) and
    even if tracing was disabled mid-flight — a span that started is always
    closed, so the per-thread stack can never leak entries.
    """

    __slots__ = ("_reg", "name", "args", "_path", "_depth", "_t0", "_c0")

    def __init__(self, reg: "Registry", name: str, args: dict):
        self._reg = reg
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        stack = self._reg._stack()
        parent = stack[-1] if stack else None
        self._path = f"{parent._path}/{self.name}" if parent else self.name
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._c0
        stack = self._reg._stack()
        if stack and stack[-1] is self:
            stack.pop()
        rec = SpanRecord(
            name=self.name,
            path=self._path,
            depth=self._depth,
            start_us=(self._t0 - self._reg._epoch) * 1e6,
            wall_us=wall * 1e6,
            cpu_us=cpu * 1e6,
            tid=threading.get_ident(),
            args=self.args,
        )
        with self._reg._lock:
            self._reg._spans.append(rec)
        return False


class Registry:
    """Thread-safe store of completed spans, counters, and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: list[SpanRecord] = []
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._epoch = time.perf_counter()

    def _stack(self) -> list:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    # -- recording ---------------------------------------------------------
    def add(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (monotonic: ``n`` >= 0)."""
        if n < 0:
            raise ValueError(f"counter {name!r}: negative increment {n}")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def merge(
        self,
        counters: Mapping[str, int] | None = None,
        gauges: Mapping[str, float] | None = None,
    ) -> None:
        """Fold a snapshot from another registry into this one.

        Counters accumulate, gauges are last-write-wins — the contract for
        shipping worker-process registries back over a pool result channel
        (the tuner's ``jobs=`` sweep, the serve worker pool).
        """
        with self._lock:
            for name, n in (counters or {}).items():
                if n < 0:
                    raise ValueError(f"counter {name!r}: negative merge {n}")
                self._counters[name] = self._counters.get(name, 0) + int(n)
            for name, value in (gauges or {}).items():
                self._gauges[name] = value

    def span(self, name: str, **args) -> "_Span":
        """A span recorded into **this** registry, ignoring the global
        enabled flag — for components that own a private registry and are
        always-on (the serve telemetry records every request this way)."""
        return _Span(self, name, args)

    def prune_spans(self, keep: int) -> int:
        """Drop the oldest spans beyond ``keep``; returns how many dropped.

        Long-running owners (a service recording one span per request)
        call this to bound registry memory; aggregates computed *before*
        pruning are unaffected, and the metrics dump simply carries the
        most recent window.
        """
        with self._lock:
            drop = max(0, len(self._spans) - keep)
            if drop:
                del self._spans[:drop]
            return drop

    # -- inspection --------------------------------------------------------
    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def aggregates(self) -> dict[str, dict[str, float]]:
        """Per-path totals: ``{path: {count, wall_us, cpu_us}}``."""
        out: dict[str, dict[str, float]] = {}
        for s in self.spans():
            row = out.setdefault(s.path, {"count": 0, "wall_us": 0.0, "cpu_us": 0.0})
            row["count"] += 1
            row["wall_us"] += s.wall_us
            row["cpu_us"] += s.cpu_us
        return out

    def reset(self) -> None:
        """Drop every recorded span/counter/gauge and restart the epoch."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._gauges.clear()
            self._epoch = time.perf_counter()


# ---------------------------------------------------------------------------
# the process-global default registry + module-level convenience API
# ---------------------------------------------------------------------------

_REGISTRY = Registry()
_ENABLED = False


def registry() -> Registry:
    """The process-global registry behind the module-level functions."""
    return _REGISTRY


def enable() -> None:
    """Turn instrumentation on (spans and counters start recording)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off (``span``/``add``/``gauge`` become no-ops)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


def reset() -> None:
    """Clear the global registry (does not change the enabled flag)."""
    _REGISTRY.reset()


def span(name: str, **args):
    """Context manager timing a named region; no-op when disabled.

    Nested ``span`` calls in the same thread chain their ``path``
    (``"outer/inner"``); each thread has its own stack, so the same code
    can run under ``ThreadPoolExecutor`` without cross-talk.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(_REGISTRY, name, args)


def add(name: str, n: int = 1) -> None:
    """Increment a named monotonic counter; no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.add(name, n)


def gauge(name: str, value: float) -> None:
    """Set a named gauge; no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, value)


def counters() -> dict[str, int]:
    """Snapshot of the global counters."""
    return _REGISTRY.counters()


def gauges() -> dict[str, float]:
    """Snapshot of the global gauges."""
    return _REGISTRY.gauges()


def spans() -> list[SpanRecord]:
    """Snapshot of the completed spans, in completion order."""
    return _REGISTRY.spans()


def merge_counters(snapshot: Mapping[str, int]) -> None:
    """Fold a worker-process counter snapshot into the global registry.

    No-op while disabled, like :func:`add` — a parent that was not
    recording must not start showing counters just because a pool shipped
    some back.
    """
    if not _ENABLED:
        return
    _REGISTRY.merge(snapshot)


@contextlib.contextmanager
def capture_counters(sink: dict):
    """Record counters for one unit of work into ``sink`` (worker-side).

    Resets and enables the **global** registry for the body, snapshots the
    counters into ``sink`` on exit (even when the body raises), then
    disables and resets again.  This destroys any global obs state, so it
    is only for dedicated worker *processes* — the pool workers of
    ``tune_block_size(jobs=N)`` and ``iolb serve`` wrap each job in it and
    ship ``sink`` back over the result channel for the parent to
    :func:`merge_counters` / :meth:`Registry.merge`.
    """
    reset()
    enable()
    try:
        yield sink
    finally:
        sink.update(_REGISTRY.counters())
        disable()
        reset()
