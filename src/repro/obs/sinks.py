"""Output sinks for the observability registry.

Three formats, all derived from the same :class:`~repro.obs.core.Registry`
snapshot:

* :func:`render_tree` — a human-readable span tree plus counter table for
  the console (the CLI prints it to **stderr** so ``--profile`` never
  perturbs a command's stdout);
* :func:`metrics_dict` / :func:`write_metrics_json` — the machine-readable
  ``iolb-metrics/1`` schema consumed by ``iolb stats`` and CI artifacts;
* :func:`chrome_trace_dict` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev (spans become complete ``"X"`` events, counters
  become ``"C"`` events at the end of the timeline).
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from .core import Registry, registry
from .envinfo import env_fingerprint

__all__ = [
    "METRICS_SCHEMA",
    "render_tree",
    "metrics_dict",
    "write_metrics_json",
    "chrome_trace_dict",
    "write_chrome_trace",
]

#: schema tag stamped into every metrics dump (bump on breaking changes)
METRICS_SCHEMA = "iolb-metrics/1"


def _fmt_us(us: float) -> str:
    """Render a microsecond quantity with a readable unit."""
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def render_tree(reg: Registry | None = None) -> str:
    """The console sink: indented span tree + counters + gauges."""
    reg = reg or registry()
    agg = reg.aggregates()
    lines = ["profile:"]
    if agg:
        width = max(len("  " * p.count("/") + p.rsplit("/", 1)[-1]) for p in agg)
        width = max(width, len("span"))
        lines.append(f"  {'span'.ljust(width)}  {'count':>5}  {'wall':>9}  {'cpu':>9}")
        for path in sorted(agg, key=lambda p: (p.count("/"), p)):
            row = agg[path]
            label = "  " * path.count("/") + path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label.ljust(width)}  {int(row['count']):>5}"
                f"  {_fmt_us(row['wall_us']):>9}  {_fmt_us(row['cpu_us']):>9}"
            )
    else:
        lines.append("  (no spans recorded)")
    counters = reg.counters()
    if counters:
        lines.append("counters:")
        cw = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(cw)}  {counters[name]}")
    gauges = reg.gauges()
    if gauges:
        lines.append("gauges:")
        gw = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(gw)}  {gauges[name]}")
    return "\n".join(lines)


def metrics_dict(reg: Registry | None = None, meta: Mapping | None = None) -> dict:
    """The ``iolb-metrics/1`` dump: spans, aggregates, counters, gauges.

    Spans are sorted by start time then path so repeated dumps of the same
    registry are stable; all durations are microseconds and non-negative.
    Every dump carries the environment fingerprint (python, platform, CPU
    count, git sha) so CI artifacts stay attributable to a machine —
    ``check_schema`` accepts dumps without it for backward compatibility.
    """
    reg = reg or registry()
    spans = sorted(reg.spans(), key=lambda s: (s.start_us, s.path))
    return {
        "schema": METRICS_SCHEMA,
        "meta": dict(meta or {}),
        "env": env_fingerprint(),
        "counters": reg.counters(),
        "gauges": reg.gauges(),
        "spans": [
            {
                "name": s.name,
                "path": s.path,
                "depth": s.depth,
                "start_us": round(s.start_us, 3),
                "wall_us": round(s.wall_us, 3),
                "cpu_us": round(s.cpu_us, 3),
                "tid": s.tid,
                "args": dict(s.args),
            }
            for s in spans
        ],
        "aggregates": {
            path: {
                "count": int(row["count"]),
                "wall_us": round(row["wall_us"], 3),
                "cpu_us": round(row["cpu_us"], 3),
            }
            for path, row in reg.aggregates().items()
        },
    }


def write_metrics_json(
    path: str | os.PathLike, reg: Registry | None = None, meta: Mapping | None = None
) -> None:
    """Serialize :func:`metrics_dict` to ``path`` (sorted keys, one trailing newline)."""
    payload = json.dumps(metrics_dict(reg, meta), indent=2, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(payload + "\n")


def chrome_trace_dict(reg: Registry | None = None) -> dict:
    """The registry as Chrome ``trace_event`` JSON (catapult format).

    Every span becomes a complete event (``ph: "X"``) with its package
    prefix (text before the first ``.``) as the category; counters become
    one ``ph: "C"`` event each at the end of the timeline so Perfetto plots
    them as final values.

    Thread idents are normalized to dense track numbers (0, 1, 2, …) in
    order of each thread's first span start, with one ``thread_name``
    metadata event per track: the export is deterministic for a given
    registry (raw idents vary per process and can be recycled by the OS),
    and every thread keeps its own track — concurrent spans from different
    threads never interleave into one.
    """
    reg = reg or registry()
    pid = os.getpid()
    spans = sorted(reg.spans(), key=lambda s: (s.start_us, s.path))
    track_of: dict[int, int] = {}
    for s in spans:
        if s.tid not in track_of:
            track_of[s.tid] = len(track_of)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "iolb"},
        }
    ]
    for track in sorted(track_of.values()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": track,
                "args": {"name": f"thread-{track}"},
            }
        )
    end_ts = 0.0
    for s in spans:
        end_ts = max(end_ts, s.start_us + s.wall_us)
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ts": round(s.start_us, 3),
                "dur": round(s.wall_us, 3),
                "pid": pid,
                "tid": track_of[s.tid],
                "args": {**s.args, "path": s.path, "cpu_us": round(s.cpu_us, 3)},
            }
        )
    for name, value in sorted(reg.counters().items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": round(end_ts, 3),
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path: str | os.PathLike, reg: Registry | None = None) -> None:
    """Serialize :func:`chrome_trace_dict` to ``path``."""
    with open(path, "w") as fh:
        fh.write(json.dumps(chrome_trace_dict(reg)) + "\n")
