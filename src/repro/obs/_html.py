"""Shared HTML primitives for the self-contained report renderers.

Both :mod:`repro.obs.dashboard` (the bench trend dashboard) and
:mod:`repro.obs.explore` (the whole-system explorer, also served live at
``GET /status``) build their documents from these helpers, so the two
surfaces share one look, one escaping discipline, and one hard rule:
**zero external resources** — inline CSS only, no scripts, no fonts, no
``http(s)://`` in any ``src``/``href``.  A report must render identically
from a CI artifact download, an e-mail attachment, or a live service
response.

Escaping: every string that reaches the document goes through
:func:`esc` unless it is wrapped in :class:`Raw` — table cells, section
titles, badges and page chrome all escape by default, so a kernel named
``<b>&evil"`` renders as text rather than markup (pinned by
``tests/test_explore.py``).
"""

from __future__ import annotations

import html as _html
from typing import Iterable, Sequence

__all__ = [
    "Raw",
    "esc",
    "fmt_s",
    "fmt_us",
    "fmt_num",
    "badge",
    "stat_tile",
    "table",
    "section",
    "details",
    "empty_note",
    "nav",
    "page",
    "BASE_CSS",
]


class Raw(str):
    """A string that is already HTML and must not be escaped again."""

    __slots__ = ()


def esc(text: object) -> str:
    """HTML-escape ``text`` (quotes included) unless it is :class:`Raw`."""
    if isinstance(text, Raw):
        return str(text)
    return _html.escape(str(text), quote=True)


# -- number formatting -------------------------------------------------------


def fmt_s(seconds: float) -> str:
    """Render a second quantity with a readable unit."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def fmt_us(us: float) -> str:
    """Render a microsecond quantity with a readable unit."""
    return fmt_s(us / 1e6)


def fmt_num(x: float) -> str:
    """Compact human number: 1234 -> '1,234', 2500000 -> '2.50M'."""
    if isinstance(x, float) and not x.is_integer():
        if abs(x) >= 1e6:
            return f"{x / 1e6:.2f}M"
        return f"{x:,.2f}"
    x = int(x)
    if abs(x) >= 10_000_000:
        return f"{x / 1e6:.2f}M"
    return f"{x:,}"


# -- building blocks ---------------------------------------------------------


def badge(text: str, kind: str = "") -> Raw:
    """A small status chip; ``kind`` in {'', 'ok', 'warn', 'bad'}."""
    cls = f"badge {kind}".strip()
    return Raw(f'<span class="{cls}">{esc(text)}</span>')


def stat_tile(label: str, value: str, note: str = "") -> Raw:
    """One headline number with its label (service gauges, summary rows)."""
    extra = f'<div class="note">{esc(note)}</div>' if note else ""
    return Raw(
        '<div class="tile">'
        f'<div class="label">{esc(label)}</div>'
        f'<div class="value">{esc(value)}</div>{extra}</div>'
    )


def table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    *,
    css_class: str = "",
) -> Raw:
    """An HTML table; every cell is escaped unless wrapped in :class:`Raw`."""
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{esc(c)}</td>" for c in row) + "</tr>" for row in rows
    )
    cls = f' class="{esc(css_class)}"' if css_class else ""
    return Raw(
        f"<table{cls}><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def section(anchor: str, title: str, body: str, *, subtitle: str = "") -> Raw:
    """One top-level report section with a stable ``id`` for the nav bar.

    ``body`` is pre-rendered HTML (built from these helpers); ``title`` and
    ``subtitle`` are text and get escaped.
    """
    sub = f'<p class="desc">{esc(subtitle)}</p>' if subtitle else ""
    return Raw(
        f'<section class="panel" id="{esc(anchor)}">'
        f"<h2>{esc(title)}</h2>{sub}{body}</section>"
    )


def details(summary: str, body: str) -> Raw:
    """A collapsed disclosure block; ``body`` is pre-rendered HTML."""
    return Raw(f"<details><summary>{esc(summary)}</summary>{body}</details>")


def empty_note(text: str) -> Raw:
    """The placeholder an artifact-less section renders instead of data."""
    return Raw(f'<p class="empty">{esc(text)}</p>')


def nav(anchors: Sequence[tuple[str, str]]) -> Raw:
    """The in-page navigation bar: ``(anchor, label)`` pairs."""
    links = "".join(f'<a href="#{esc(a)}">{esc(label)}</a>' for a, label in anchors)
    return Raw(f'<nav class="nav">{links}</nav>')


def page(
    title: str,
    body: str,
    *,
    subtitle: str = "",
    footer: str = "",
    refresh_s: int | None = None,
    extra_css: str = "",
) -> str:
    """A complete self-contained HTML document.

    ``body``, ``subtitle`` and ``footer`` are pre-rendered HTML; ``title``
    is text.  ``refresh_s`` adds a ``<meta http-equiv="refresh">`` — the
    script-free fallback the live ``/status`` page uses to stay current
    without any external resource or JavaScript.
    """
    meta_refresh = (
        f'<meta http-equiv="refresh" content="{int(refresh_s)}">' if refresh_s else ""
    )
    sub = f'<p class="sub">{subtitle}</p>' if subtitle else ""
    foot = f'<p class="footer">{footer}</p>' if footer else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"{meta_refresh}"
        f"<title>{esc(title)}</title>"
        f"<style>{BASE_CSS}{extra_css}</style></head><body>"
        f"<h1>{esc(title)}</h1>"
        f"{sub}{body}{foot}"
        "</body></html>\n"
    )


# -- the one stylesheet ------------------------------------------------------

#: shared stylesheet: light/dark from the same markup via custom properties;
#: ``--c0``..``--c5`` is the categorical series palette the SVG marks use.
BASE_CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --panel: #f4f3f0; --border: #dcdbd6;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #878680;
  --line: #2a78d6; --fill: rgba(42, 120, 214, 0.12);
  --bad: #e34948; --good: #008300; --warn: #a36b00;
  --c0: #2a78d6; --c1: #d6662a; --c2: #2f9e62; --c3: #9e2f8c;
  --c4: #767119; --c5: #5b5bd6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #232322; --border: #3a3a38;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #8d8c85;
    --line: #3987e5; --fill: rgba(57, 135, 229, 0.18);
    --bad: #e66767; --good: #4caf50; --warn: #d9a33c;
    --c0: #3987e5; --c1: #e58a4a; --c2: #4dbb82; --c3: #c45cb0;
    --c4: #b0aa45; --c5: #8a8af0;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 2rem clamp(1rem, 4vw, 3rem);
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.3rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.05rem; margin: 0 0 0.25rem; }
h3 { font-size: 0.95rem; margin: 1rem 0 0.25rem; font-family: ui-monospace, monospace; }
.sub { color: var(--ink-2); margin: 0 0 1rem; }
.nav { margin: 0 0 1.25rem; display: flex; flex-wrap: wrap; gap: 0.25rem 1rem; }
.nav a { color: var(--line); text-decoration: none; }
.nav a:hover { text-decoration: underline; }
.panel, .bench {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 1rem 1.25rem; margin: 0 0 1rem;
}
.bench h2 { font-size: 1rem; margin: 0; font-family: ui-monospace, monospace; }
.head { display: flex; flex-wrap: wrap; gap: 1.5rem; align-items: center; }
.stat { margin-left: auto; text-align: right; }
.stat .v { font-size: 1.25rem; font-variant-numeric: tabular-nums; }
.stat .d { color: var(--ink-2); font-size: 0.85rem; }
.d.up { color: var(--bad); }
.d.down { color: var(--good); }
.desc { color: var(--ink-2); margin: 0.25rem 0 0.75rem; }
.empty { color: var(--ink-3); font-style: italic; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.75rem; margin: 0.5rem 0 1rem; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 0.5rem 0.9rem; min-width: 7.5rem;
}
.tile .label { color: var(--ink-2); font-size: 0.8rem; }
.tile .value { font-size: 1.2rem; font-variant-numeric: tabular-nums; }
.tile .note { color: var(--ink-3); font-size: 0.75rem; }
.badge {
  display: inline-block; border-radius: 4px; padding: 0 0.4rem;
  font-size: 0.8rem; border: 1px solid var(--border); color: var(--ink-2);
}
.badge.ok { color: var(--good); border-color: var(--good); }
.badge.warn { color: var(--warn); border-color: var(--warn); }
.badge.bad { color: var(--bad); border-color: var(--bad); }
svg.spark { display: block; }
svg.spark .axis, svg.chart .axis { stroke: var(--border); stroke-width: 1; }
svg.spark .trend { stroke: var(--line); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
svg.spark .area { fill: var(--fill); }
svg.spark .pt { fill: var(--line); }
svg.spark .pt-hit { fill: transparent; }
svg.chart .grid { stroke: var(--border); stroke-width: 0.5; stroke-dasharray: 2 3; }
svg.chart text, svg.flame text { fill: var(--ink-2); font: 10px ui-monospace, monospace; }
svg.chart .lbl { fill: var(--ink-2); }
svg.chart .series { fill: none; stroke-width: 1.8;
  stroke-linejoin: round; stroke-linecap: round; }
svg.chart .s0 { stroke: var(--c0); } svg.chart .f0 { fill: var(--c0); }
svg.chart .s1 { stroke: var(--c1); } svg.chart .f1 { fill: var(--c1); }
svg.chart .s2 { stroke: var(--c2); } svg.chart .f2 { fill: var(--c2); }
svg.chart .s3 { stroke: var(--c3); } svg.chart .f3 { fill: var(--c3); }
svg.chart .s4 { stroke: var(--c4); } svg.chart .f4 { fill: var(--c4); }
svg.chart .s5 { stroke: var(--c5); } svg.chart .f5 { fill: var(--c5); }
svg.chart .dashed { stroke-dasharray: 5 3; }
svg.flame rect { stroke: var(--surface); stroke-width: 0.5; }
svg.flame .b0 { fill: var(--c0); } svg.flame .b1 { fill: var(--c1); }
svg.flame .b2 { fill: var(--c2); } svg.flame .b3 { fill: var(--c3); }
svg.flame .b4 { fill: var(--c4); } svg.flame .b5 { fill: var(--c5); }
.legend { display: flex; flex-wrap: wrap; gap: 0.25rem 1rem; margin: 0.25rem 0;
  color: var(--ink-2); font-size: 0.85rem; }
.legend .key { display: inline-block; width: 0.8rem; height: 0.2rem;
  vertical-align: middle; margin-right: 0.35rem; }
.k0 { background: var(--c0); } .k1 { background: var(--c1); }
.k2 { background: var(--c2); } .k3 { background: var(--c3); }
.k4 { background: var(--c4); } .k5 { background: var(--c5); }
table { border-collapse: collapse; width: 100%; margin-top: 0.75rem;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 0.25rem 0.75rem;
  border-bottom: 1px solid var(--border); }
th { color: var(--ink-2); font-weight: 500; }
th:first-child, td:first-child, th:nth-child(2), td:nth-child(2),
th:nth-child(3), td:nth-child(3) { text-align: left; }
td.mono, .mono { font-family: ui-monospace, monospace; }
td.drift { color: var(--bad); }
code { font-family: ui-monospace, monospace; background: var(--panel);
  padding: 0 0.25rem; border-radius: 3px; }
pre.src { background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 0.5rem 0.75rem; overflow-x: auto;
  font: 12px/1.45 ui-monospace, monospace; }
pre.src .caret { color: var(--bad); }
details > summary { cursor: pointer; color: var(--ink-2); margin-top: 0.5rem; }
.footer { color: var(--ink-3); margin-top: 1.5rem; font-size: 0.85rem; }
"""
