"""repro.obs — zero-dependency observability for the derivation pipeline.

Structured tracing, counters, and profiling in the style IOLB and the
pebbling tools report per-phase statistics.  The package has three layers:

* :mod:`repro.obs.core` — a hierarchical span tracer
  (``with obs.span("bounds.derive"): ...``) with wall/CPU timings and
  thread-safe accumulation, plus named monotonic counters and gauges,
  all behind a module-level enabled flag that is **off by default**;
* :mod:`repro.obs.sinks` — an in-memory registry snapshot, a console
  span tree, the ``iolb-metrics/1`` JSON dump, and a Chrome
  ``trace_event`` exporter loadable in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.stats` — summarize one metrics dump or diff two (the
  engine behind ``iolb stats``);
* :mod:`repro.obs.envinfo` — the environment fingerprint (python,
  platform, CPU count, git sha) stamped into every dump and bench record;
* :mod:`repro.obs.bench` / :mod:`repro.obs.history` /
  :mod:`repro.obs.dashboard` — the ``iolb bench`` performance suite:
  declarative workloads with warmup + repeats and robust statistics, the
  versioned ``iolb-bench/1`` record, the on-disk history store with
  median-vs-MAD regression detection, and the self-contained HTML trend
  dashboard.  (:mod:`~repro.obs.bench` is imported lazily — its workloads
  pull in the rest of :mod:`repro`, which this package otherwise never
  does.)
* :mod:`repro.obs.explore` — the whole-system explorer behind
  ``iolb explore`` and the live ``GET /status`` page of ``iolb serve``:
  one self-contained HTML report joining every JSON artifact family
  (metrics, bench history, lint, cert checks, Chrome traces, bound-vs-
  measured curves), built on the shared :mod:`repro.obs._html` /
  :mod:`repro.obs._svg` rendering primitives the dashboard uses.

Usage from instrumented code (all no-ops until ``obs.enable()``)::

    from .. import obs

    with obs.span("polyhedral.projections", stmt=name):
        ...
    obs.add("polyhedral.fm_eliminations")

The CLI enables it via ``iolb derive/tune/verify --profile
[--metrics-json PATH --trace-out PATH]``.  This package imports nothing
from the rest of :mod:`repro` (stdlib only), so every analysis package can
instrument itself without import cycles.
"""

from .core import (
    Registry,
    SpanRecord,
    add,
    capture_counters,
    counters,
    disable,
    enable,
    enabled,
    gauge,
    gauges,
    merge_counters,
    registry,
    reset,
    span,
    spans,
)
from .dashboard import render_dashboard, render_trend_sections
from .envinfo import describe_env, env_comparable, env_fingerprint
from .explore import (
    CURVES_SCHEMA,
    ExploreData,
    check_curves_schema,
    compute_curves,
    load_inputs,
    render_explore,
    render_status,
)
from .history import (
    BENCH_SCHEMA,
    CompareReport,
    append_entry,
    check_bench_schema,
    compare_records,
    load_history,
    load_record,
    resolve_baseline,
)
from .sinks import (
    METRICS_SCHEMA,
    chrome_trace_dict,
    metrics_dict,
    render_tree,
    write_chrome_trace,
    write_metrics_json,
)
from .stats import check_schema, diff_metrics, summarize_metrics

__all__ = [
    "Registry",
    "SpanRecord",
    "enable",
    "disable",
    "enabled",
    "reset",
    "registry",
    "span",
    "add",
    "gauge",
    "counters",
    "gauges",
    "spans",
    "merge_counters",
    "capture_counters",
    "METRICS_SCHEMA",
    "render_tree",
    "metrics_dict",
    "write_metrics_json",
    "chrome_trace_dict",
    "write_chrome_trace",
    "summarize_metrics",
    "diff_metrics",
    "check_schema",
    "env_fingerprint",
    "describe_env",
    "env_comparable",
    "BENCH_SCHEMA",
    "check_bench_schema",
    "load_record",
    "load_history",
    "append_entry",
    "resolve_baseline",
    "compare_records",
    "CompareReport",
    "render_dashboard",
    "render_trend_sections",
    "CURVES_SCHEMA",
    "ExploreData",
    "check_curves_schema",
    "compute_curves",
    "load_inputs",
    "render_explore",
    "render_status",
]
