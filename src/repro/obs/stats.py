"""Summaries and diffs of ``iolb-metrics/1`` dumps (the ``iolb stats`` brain).

:func:`summarize_metrics` condenses one dump into the tables an engineer
scans first: hottest span paths by wall time, then every counter.
:func:`diff_metrics` lines two dumps up for regression triage — per-path
wall-time deltas and counter deltas, with percentages — e.g. comparing the
metrics artifact of a nightly CI run against the previous one.

Deliberately zero-dependency (stdlib only, plain string tables): this
module must stay importable from anywhere without dragging in the rest of
:mod:`repro`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .sinks import METRICS_SCHEMA, _fmt_us

__all__ = ["summarize_metrics", "diff_metrics", "check_schema"]


def check_schema(metrics: Mapping, source: str = "metrics") -> None:
    """Raise ``ValueError`` unless ``metrics`` looks like an iolb dump.

    The ``env`` fingerprint block is accepted-but-not-required: dumps
    written before it existed still load, but a present-and-malformed one
    is rejected rather than silently carried along.
    """
    if not isinstance(metrics, Mapping) or metrics.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{source}: not an {METRICS_SCHEMA!r} dump"
            f" (schema={metrics.get('schema') if isinstance(metrics, Mapping) else None!r})"
        )
    env = metrics.get("env")
    if env is not None and not isinstance(env, Mapping):
        raise ValueError(f"{source}: 'env' block is not a mapping ({type(env).__name__})")


def _table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(out)


def summarize_metrics(metrics: Mapping, top: int = 20) -> str:
    """One dump -> hottest spans (by total wall time) + all counters."""
    check_schema(metrics)
    agg = metrics.get("aggregates", {})
    ranked = sorted(agg.items(), key=lambda kv: -kv[1]["wall_us"])[:top]
    parts = []
    if ranked:
        parts.append(
            _table(
                ["span path", "count", "wall", "cpu"],
                [
                    [p, row["count"], _fmt_us(row["wall_us"]), _fmt_us(row["cpu_us"])]
                    for p, row in ranked
                ],
                title=f"top {len(ranked)} span paths by wall time:",
            )
        )
    else:
        parts.append("no spans recorded")
    counters = metrics.get("counters", {})
    if counters:
        parts.append(
            _table(
                ["counter", "value"],
                [[n, counters[n]] for n in sorted(counters)],
                title="counters:",
            )
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        parts.append(
            _table(
                ["gauge", "value"],
                [[n, gauges[n]] for n in sorted(gauges)],
                title="gauges:",
            )
        )
    return "\n\n".join(parts)


def _pct(new: float, old: float) -> str:
    if old == 0:
        return "n/a" if new == 0 else "new"
    return f"{(new - old) / old * 100:+.1f}%"


def diff_metrics(a: Mapping, b: Mapping, threshold_pct: float = 0.0) -> str:
    """Two dumps -> per-path wall, counter, and gauge deltas (b relative to a).

    Span rows whose wall time did not move at all are hidden, as are rows
    that moved by less than ``threshold_pct`` percent (counters and gauges
    are always shown when they changed).
    """
    check_schema(a, "first dump")
    check_schema(b, "second dump")
    agg_a = a.get("aggregates", {})
    agg_b = b.get("aggregates", {})
    rows = []
    for path in sorted(set(agg_a) | set(agg_b)):
        wa = agg_a.get(path, {}).get("wall_us", 0.0)
        wb = agg_b.get(path, {}).get("wall_us", 0.0)
        if wb == wa or (wa and abs(wb - wa) / wa * 100 < threshold_pct):
            continue
        rows.append([path, _fmt_us(wa), _fmt_us(wb), _fmt_us(abs(wb - wa)), _pct(wb, wa)])
    parts = []
    if rows:
        parts.append(
            _table(
                ["span path", "wall A", "wall B", "|delta|", "B vs A"],
                rows,
                title="span wall time (A -> B):",
            )
        )
    ca = a.get("counters", {})
    cb = b.get("counters", {})
    crows = []
    for name in sorted(set(ca) | set(cb)):
        va, vb = ca.get(name, 0), cb.get(name, 0)
        if va == vb:
            continue
        crows.append([name, va, vb, f"{vb - va:+d}", _pct(vb, va)])
    if crows:
        parts.append(
            _table(
                ["counter", "A", "B", "delta", "B vs A"],
                crows,
                title="counters that changed:",
            )
        )
    ga = a.get("gauges", {})
    gb = b.get("gauges", {})
    grows = []
    for name in sorted(set(ga) | set(gb)):
        va, vb = ga.get(name, 0), gb.get(name, 0)
        if va == vb:
            continue
        grows.append([name, va, vb, f"{vb - va:+g}", _pct(vb, va)])
    if grows:
        parts.append(
            _table(
                ["gauge", "A", "B", "delta", "B vs A"],
                grows,
                title="gauges that changed:",
            )
        )
    if not parts:
        return "no differences"
    return "\n\n".join(parts)
