"""Self-contained HTML trend dashboard over the bench history.

:func:`render_dashboard` turns a chronological list of ``iolb-bench/1``
records (from :func:`repro.obs.history.load_history`) into one HTML file
with zero external dependencies — inline CSS, inline SVG sparklines, no
scripts — so the artifact can be opened from a CI download or e-mailed
around and still render.

Per benchmark it shows a headline (latest median + delta vs the previous
entry), a sparkline of the median wall time across history, and the full
table view (date, commit, python, median, min, MAD, delta, counter-drift
flag).  Single series per chart, so identity needs no legend; values live
in the table, not painted on every point.  Light and dark render from the
same markup via CSS custom properties.

The rendering primitives (escaping, page chrome, the guarded sparkline
scale math) live in :mod:`repro.obs._html` / :mod:`repro.obs._svg` and are
shared with the whole-system explorer (:mod:`repro.obs.explore`) — the
dashboard is also embeddable there as a section via
:func:`render_trend_sections`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ._html import Raw, esc, fmt_s, page
from ._svg import sparkline as _sparkline

__all__ = ["render_dashboard", "render_trend_sections"]


def _delta_html(prev: float | None, cur: float) -> str:
    if prev is None or prev == 0:
        return '<span class="d">first entry</span>'
    pct = (cur - prev) / prev * 100
    cls = "up" if pct > 0 else "down" if pct < 0 else ""
    return f'<span class="d {cls}">{pct:+.1f}% vs prev</span>'


def _counter_drift(prev_row: Mapping | None, row: Mapping) -> bool:
    if prev_row is None:
        return False
    return (prev_row.get("counters") or {}) != (row.get("counters") or {})


def render_trend_sections(records: Sequence[Mapping]) -> Raw:
    """The per-benchmark trend panels (one ``<section>`` each), as HTML.

    This is the dashboard body without the page chrome, so the explorer
    can embed the exact same panels as its bench-history section.
    """
    records = list(records)
    order: list[str] = []
    for rec in records:
        for name in rec.get("results", {}):
            if name not in order:
                order.append(name)

    sections = []
    for name in order:
        series = []  # (record, row) where the benchmark is present
        for rec in records:
            row = rec.get("results", {}).get(name)
            if isinstance(row, Mapping) and isinstance(row.get("wall_s"), Mapping):
                series.append((rec, row))
        if not series:
            continue
        points = []
        for rec, row in series:
            sha = (rec.get("env") or {}).get("git_sha") or "?"
            label = f"{str(rec.get('created', '?'))[:10]} @{sha}"
            points.append((label, float(row["wall_s"]["median"])))
        prev_median = points[-2][1] if len(points) > 1 else None
        trs = []
        prev_row = None
        for (rec, row), (label, med) in zip(series, points):
            wall = row["wall_s"]
            drift = _counter_drift(prev_row, row)
            trs.append(
                "<tr>"
                f"<td>{esc(str(rec.get('created', '?'))[:19])}</td>"
                f"<td class='mono'>{esc((rec.get('env') or {}).get('git_sha') or '?')}</td>"
                f"<td>{esc(str((rec.get('env') or {}).get('python', '?')))}</td>"
                f"<td>{fmt_s(med)}</td>"
                f"<td>{fmt_s(float(wall.get('min', med)))}</td>"
                f"<td>{fmt_s(float(wall.get('mad', 0.0)))}</td>"
                f"<td>{_delta_html(prev_row and float(prev_row['wall_s']['median']), med)}</td>"
                f"<td class='{'drift' if drift else ''}'>{'drift' if drift else 'stable'}</td>"
                "</tr>"
            )
            prev_row = row
        sections.append(
            '<section class="bench">'
            '<div class="head">'
            f"<div><h2>{esc(name)}</h2>"
            f'<p class="desc">{len(series)} history entr{"y" if len(series) == 1 else "ies"}</p></div>'
            f"{_sparkline(points)}"
            f'<div class="stat"><div class="v">{fmt_s(points[-1][1])}</div>'
            f"{_delta_html(prev_median, points[-1][1])}</div>"
            "</div>"
            "<details><summary>all entries</summary>"
            "<table><thead><tr><th>recorded</th><th>commit</th><th>python</th>"
            "<th>median</th><th>min</th><th>MAD</th><th>delta</th><th>counters</th>"
            f"</tr></thead><tbody>{''.join(trs)}</tbody></table>"
            "</details>"
            "</section>"
        )
    return Raw("".join(sections))


def render_dashboard(
    records: Sequence[Mapping], *, title: str = "iolb bench — performance history"
) -> str:
    """The dashboard HTML for a chronological list of bench records."""
    from .envinfo import describe_env  # stdlib sibling

    records = list(records)
    latest_env = records[-1].get("env") if records else None
    body = str(render_trend_sections(records)) or "<p>(no bench history)</p>"
    return page(
        title,
        body,
        subtitle=(
            f"{len(records)} record(s) · latest environment: "
            f"{esc(describe_env(latest_env))}"
        ),
        footer=(
            "median wall seconds per entry; generated by "
            "<code>iolb bench --report</code> — schema iolb-bench/1"
        ),
    )
