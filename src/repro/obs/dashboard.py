"""Self-contained HTML trend dashboard over the bench history.

:func:`render_dashboard` turns a chronological list of ``iolb-bench/1``
records (from :func:`repro.obs.history.load_history`) into one HTML file
with zero external dependencies — inline CSS, inline SVG sparklines, no
scripts — so the artifact can be opened from a CI download or e-mailed
around and still render.

Per benchmark it shows a headline (latest median + delta vs the previous
entry), a sparkline of the median wall time across history, and the full
table view (date, commit, python, median, min, MAD, delta, counter-drift
flag).  Single series per chart, so identity needs no legend; values live
in the table, not painted on every point.  Light and dark render from the
same markup via CSS custom properties.
"""

from __future__ import annotations

import html
from typing import Mapping, Sequence

__all__ = ["render_dashboard"]

_CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --panel: #f4f3f0; --border: #dcdbd6;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #878680;
  --line: #2a78d6; --fill: rgba(42, 120, 214, 0.12);
  --bad: #e34948; --good: #008300;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #232322; --border: #3a3a38;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #8d8c85;
    --line: #3987e5; --fill: rgba(57, 135, 229, 0.18);
    --bad: #e66767; --good: #4caf50;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 2rem clamp(1rem, 4vw, 3rem);
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.3rem; margin: 0 0 0.25rem; }
.sub { color: var(--ink-2); margin: 0 0 1.5rem; }
.bench {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 1rem 1.25rem; margin: 0 0 1rem;
}
.bench h2 { font-size: 1rem; margin: 0; font-family: ui-monospace, monospace; }
.head { display: flex; flex-wrap: wrap; gap: 1.5rem; align-items: center; }
.stat { margin-left: auto; text-align: right; }
.stat .v { font-size: 1.25rem; font-variant-numeric: tabular-nums; }
.stat .d { color: var(--ink-2); font-size: 0.85rem; }
.d.up { color: var(--bad); }
.d.down { color: var(--good); }
.desc { color: var(--ink-2); margin: 0.25rem 0 0.75rem; }
svg.spark { display: block; }
svg.spark .axis { stroke: var(--border); stroke-width: 1; }
svg.spark .trend { stroke: var(--line); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
svg.spark .area { fill: var(--fill); }
svg.spark .pt { fill: var(--line); }
svg.spark .pt-hit { fill: transparent; }
table { border-collapse: collapse; width: 100%; margin-top: 0.75rem;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 0.25rem 0.75rem; border-bottom: 1px solid var(--border); }
th { color: var(--ink-2); font-weight: 500; }
th:first-child, td:first-child, th:nth-child(2), td:nth-child(2),
th:nth-child(3), td:nth-child(3) { text-align: left; }
td.mono { font-family: ui-monospace, monospace; }
td.drift { color: var(--bad); }
details > summary { cursor: pointer; color: var(--ink-2); margin-top: 0.5rem; }
.footer { color: var(--ink-3); margin-top: 1.5rem; font-size: 0.85rem; }
"""


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _sparkline(points: Sequence[tuple[str, float]], w: int = 260, h: int = 52) -> str:
    """Inline SVG of the median-wall series; one <title> tooltip per point."""
    pad = 6
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or max(hi, 1e-9)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (w - 2 * pad) * (i / max(len(values) - 1, 1))
        y = (h - pad) - (h - 2 * pad) * ((v - lo) / span)
        return round(x, 1), round(y, 1)

    coords = [xy(i, v) for i, v in enumerate(values)]
    poly = " ".join(f"{x},{y}" for x, y in coords)
    area = f"{pad},{h - pad} {poly} {coords[-1][0]},{h - pad}"
    parts = [
        f'<svg class="spark" role="img" viewBox="0 0 {w} {h}" width="{w}" height="{h}"'
        f' aria-label="median wall time trend, {len(values)} entries">',
        f'<line class="axis" x1="{pad}" y1="{h - pad}" x2="{w - pad}" y2="{h - pad}"/>',
        f'<polygon class="area" points="{area}"/>',
        f'<polyline class="trend" points="{poly}"/>',
    ]
    for (x, y), (label, v) in zip(coords, points):
        last = (x, y) == coords[-1]
        r = 4 if last else 2
        title = f"<title>{html.escape(label)}: {_fmt_s(v)}</title>"
        parts.append(f'<circle class="pt" cx="{x}" cy="{y}" r="{r}">{title}</circle>')
        parts.append(
            f'<circle class="pt-hit" cx="{x}" cy="{y}" r="10">{title}</circle>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _delta_html(prev: float | None, cur: float) -> str:
    if prev is None or prev == 0:
        return '<span class="d">first entry</span>'
    pct = (cur - prev) / prev * 100
    cls = "up" if pct > 0 else "down" if pct < 0 else ""
    return f'<span class="d {cls}">{pct:+.1f}% vs prev</span>'


def _counter_drift(prev_row: Mapping | None, row: Mapping) -> bool:
    if prev_row is None:
        return False
    return (prev_row.get("counters") or {}) != (row.get("counters") or {})


def render_dashboard(
    records: Sequence[Mapping], *, title: str = "iolb bench — performance history"
) -> str:
    """The dashboard HTML for a chronological list of bench records."""
    from .envinfo import describe_env  # stdlib sibling

    records = list(records)
    order: list[str] = []
    for rec in records:
        for name in rec.get("results", {}):
            if name not in order:
                order.append(name)

    sections = []
    for name in order:
        series = []  # (record, row) where the benchmark is present
        for rec in records:
            row = rec.get("results", {}).get(name)
            if isinstance(row, Mapping) and isinstance(row.get("wall_s"), Mapping):
                series.append((rec, row))
        if not series:
            continue
        points = []
        for rec, row in series:
            sha = (rec.get("env") or {}).get("git_sha") or "?"
            label = f"{str(rec.get('created', '?'))[:10]} @{sha}"
            points.append((label, float(row["wall_s"]["median"])))
        latest_rec, latest_row = series[-1]
        prev_median = points[-2][1] if len(points) > 1 else None
        trs = []
        prev_row = None
        for (rec, row), (label, med) in zip(series, points):
            wall = row["wall_s"]
            drift = _counter_drift(prev_row, row)
            trs.append(
                "<tr>"
                f"<td>{html.escape(str(rec.get('created', '?'))[:19])}</td>"
                f"<td class='mono'>{html.escape((rec.get('env') or {}).get('git_sha') or '?')}</td>"
                f"<td>{html.escape(str((rec.get('env') or {}).get('python', '?')))}</td>"
                f"<td>{_fmt_s(med)}</td>"
                f"<td>{_fmt_s(float(wall.get('min', med)))}</td>"
                f"<td>{_fmt_s(float(wall.get('mad', 0.0)))}</td>"
                f"<td>{_delta_html(prev_row and float(prev_row['wall_s']['median']), med)}</td>"
                f"<td class='{'drift' if drift else ''}'>{'drift' if drift else 'stable'}</td>"
                "</tr>"
            )
            prev_row = row
        sections.append(
            '<section class="bench">'
            '<div class="head">'
            f"<div><h2>{html.escape(name)}</h2>"
            f'<p class="desc">{len(series)} history entr{"y" if len(series) == 1 else "ies"}</p></div>'
            f"{_sparkline(points)}"
            f'<div class="stat"><div class="v">{_fmt_s(points[-1][1])}</div>'
            f"{_delta_html(prev_median, points[-1][1])}</div>"
            "</div>"
            "<details><summary>all entries</summary>"
            "<table><thead><tr><th>recorded</th><th>commit</th><th>python</th>"
            "<th>median</th><th>min</th><th>MAD</th><th>delta</th><th>counters</th>"
            f"</tr></thead><tbody>{''.join(trs)}</tbody></table>"
            "</details>"
            "</section>"
        )

    latest_env = records[-1].get("env") if records else None
    body = "".join(sections) or "<p>(no bench history)</p>"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="sub">{len(records)} record(s) · latest environment: '
        f"{html.escape(describe_env(latest_env))}</p>"
        f"{body}"
        '<p class="footer">median wall seconds per entry; generated by '
        "<code>iolb bench --report</code> — schema iolb-bench/1</p>"
        "</body></html>\n"
    )
