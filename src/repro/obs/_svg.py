"""Shared inline-SVG marks for the self-contained report renderers.

Three chart families, all emitted as plain ``<svg>`` markup styled by the
CSS custom properties in :mod:`repro.obs._html` (so one markup renders in
light and dark), all free of scripts and external resources:

* :func:`sparkline` — the bench dashboard's single-series trend mark.
  The scale math is guarded against the degenerate series a young history
  store produces: a **single point** renders as one centered dot (no
  polyline, no area) and a **constant series** renders as a mid-height
  line instead of collapsing onto the x-axis (zero y-range would
  otherwise divide by zero or pin the trend to the axis).
* :func:`line_chart` — multi-series scatter+line with optional log₂/log₁₀
  axes, tick labels and per-point tooltips; the bound-vs-measured curves
  of ``iolb explore`` are drawn with it.
* :func:`flamegraph` — an icicle layout of Chrome ``trace_event``
  complete events (``ph: "X"``), one lane stack per thread track, depth
  taken from the span ``args.path`` the exporter embeds.

Every label that reaches the SVG goes through :func:`~repro.obs._html.esc`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ._html import Raw, esc, fmt_us

__all__ = ["sparkline", "line_chart", "legend", "flamegraph"]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


# ---------------------------------------------------------------------------
# sparkline (single series, used per benchmark in the trend dashboard)
# ---------------------------------------------------------------------------


def sparkline(points: Sequence[tuple[str, float]], w: int = 260, h: int = 52) -> Raw:
    """Inline SVG of a labelled series; one ``<title>`` tooltip per point.

    Degenerate series are first-class: one point draws a single dot at
    mid-height, a constant series draws a flat line at mid-height — both
    keep the baseline axis and the tooltips, neither divides by zero.
    """
    pad = 6
    values = [v for _, v in points]
    if not values:
        return Raw(
            f'<svg class="spark" role="img" viewBox="0 0 {w} {h}"'
            f' width="{w}" height="{h}" aria-label="empty series">'
            f'<line class="axis" x1="{pad}" y1="{h - pad}" x2="{w - pad}"'
            f' y2="{h - pad}"/></svg>'
        )
    lo, hi = min(values), max(values)
    span = hi - lo
    flat = span <= 0  # constant series (or a single point): no y range

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (w - 2 * pad) * (i / max(len(values) - 1, 1))
        if flat:
            y = h / 2  # mid-height, never on the axis
        else:
            y = (h - pad) - (h - 2 * pad) * ((v - lo) / span)
        return round(x, 1), round(y, 1)

    coords = [xy(i, v) for i, v in enumerate(values)]
    parts = [
        f'<svg class="spark" role="img" viewBox="0 0 {w} {h}" width="{w}" height="{h}"'
        f' aria-label="trend, {len(values)} entries">',
        f'<line class="axis" x1="{pad}" y1="{h - pad}" x2="{w - pad}" y2="{h - pad}"/>',
    ]
    if len(coords) > 1:
        poly = " ".join(f"{x},{y}" for x, y in coords)
        area = f"{pad},{h - pad} {poly} {coords[-1][0]},{h - pad}"
        parts.append(f'<polygon class="area" points="{area}"/>')
        parts.append(f'<polyline class="trend" points="{poly}"/>')
    for (x, y), (label, v) in zip(coords, points):
        last = (x, y) == coords[-1]
        r = 4 if last else 2
        title = f"<title>{esc(label)}: {_fmt_s(v)}</title>"
        parts.append(f'<circle class="pt" cx="{x}" cy="{y}" r="{r}">{title}</circle>')
        parts.append(f'<circle class="pt-hit" cx="{x}" cy="{y}" r="10">{title}</circle>')
    parts.append("</svg>")
    return Raw("".join(parts))


# ---------------------------------------------------------------------------
# multi-series line chart (bound-vs-measured curves)
# ---------------------------------------------------------------------------


def _ticks(lo: float, hi: float, log: bool, n: int = 5) -> list[float]:
    """A few pleasant tick positions across [lo, hi]."""
    if log:
        k_lo, k_hi = math.floor(math.log2(lo)), math.ceil(math.log2(hi))
        step = max(1, (k_hi - k_lo) // n)
        return [2.0**k for k in range(k_lo, k_hi + 1, step)]
    if hi <= lo:
        return [lo]
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


def _fmt_tick(v: float) -> str:
    if v >= 1e6:
        return f"{v / 1e6:g}M"
    if v >= 1e3:
        return f"{v / 1e3:g}k"
    if v == int(v):
        return f"{int(v)}"
    return f"{v:g}"


def line_chart(
    series: Sequence[Mapping],
    *,
    w: int = 460,
    h: int = 230,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "",
    y_label: str = "",
) -> Raw:
    """Multi-series line chart with ticks, tooltips and optional log axes.

    Each entry of ``series`` is a mapping with ``label`` (str), ``points``
    (sequence of ``(x, y)`` with positive values when the axis is log) and
    optional ``dashed`` (bool) — dashing distinguishes derived bounds from
    measured traffic without relying on color alone.  Series colors cycle
    through the ``s0``..``s5`` CSS classes; the caller renders the matching
    legend with ``k0``..``k5`` keys.
    """
    pad_l, pad_r, pad_t, pad_b = 44, 10, 8, 26
    xs = [x for s in series for x, _ in s["points"]]
    ys = [y for s in series for _, y in s["points"] if y > 0 or not log_y]
    if not xs or not ys:
        return Raw('<svg class="chart" viewBox="0 0 10 10" width="10" height="10"></svg>')

    def tx(v: float) -> float:
        return math.log2(v) if log_x else v

    def ty(v: float) -> float:
        return math.log10(max(v, 1e-12)) if log_y else v

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    tx_lo, tx_hi = tx(x_lo), tx(x_hi)
    ty_lo, ty_hi = ty(y_lo), ty(y_hi)
    if tx_hi <= tx_lo:
        tx_hi = tx_lo + 1.0
    if ty_hi <= ty_lo:
        ty_hi = ty_lo + 1.0

    def px(v: float) -> float:
        return round(pad_l + (w - pad_l - pad_r) * (tx(v) - tx_lo) / (tx_hi - tx_lo), 1)

    def py(v: float) -> float:
        return round(
            (h - pad_b) - (h - pad_t - pad_b) * (ty(v) - ty_lo) / (ty_hi - ty_lo), 1
        )

    parts = [
        f'<svg class="chart" role="img" viewBox="0 0 {w} {h}" width="{w}" height="{h}"'
        f' aria-label="{esc(y_label or "series")} vs {esc(x_label or "x")}">'
    ]
    # axes + grid
    parts.append(
        f'<line class="axis" x1="{pad_l}" y1="{h - pad_b}" x2="{w - pad_r}" y2="{h - pad_b}"/>'
        f'<line class="axis" x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" y2="{h - pad_b}"/>'
    )
    for v in _ticks(x_lo, x_hi, log_x):
        if v < x_lo or v > x_hi:
            continue
        x = px(v)
        parts.append(
            f'<line class="grid" x1="{x}" y1="{pad_t}" x2="{x}" y2="{h - pad_b}"/>'
            f'<text class="lbl" x="{x}" y="{h - pad_b + 14}" text-anchor="middle">'
            f"{esc(_fmt_tick(v))}</text>"
        )
    y_ticks = (
        [10.0**k for k in range(math.floor(ty_lo), math.ceil(ty_hi) + 1)]
        if log_y
        else _ticks(y_lo, y_hi, False)
    )
    for v in y_ticks:
        if v < y_lo * 0.999 or v > y_hi * 1.001:
            continue
        y = py(v)
        parts.append(
            f'<line class="grid" x1="{pad_l}" y1="{y}" x2="{w - pad_r}" y2="{y}"/>'
            f'<text class="lbl" x="{pad_l - 4}" y="{y + 3}" text-anchor="end">'
            f"{esc(_fmt_tick(v))}</text>"
        )
    if x_label:
        parts.append(
            f'<text class="lbl" x="{(pad_l + w - pad_r) / 2}" y="{h - 2}"'
            f' text-anchor="middle">{esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text class="lbl" x="10" y="{pad_t + 2}" text-anchor="start">'
            f"{esc(y_label)}</text>"
        )
    # series
    for i, s in enumerate(series):
        cls = f"s{i % 6}"
        fcls = f"f{i % 6}"
        dashed = " dashed" if s.get("dashed") else ""
        pts = [(x, y) for x, y in s["points"] if not log_y or y > 0]
        if len(pts) > 1:
            poly = " ".join(f"{px(x)},{py(y)}" for x, y in pts)
            parts.append(f'<polyline class="series {cls}{dashed}" points="{poly}"/>')
        for x, y in pts:
            title = f"<title>{esc(s['label'])}: x={_fmt_tick(x)}, y={_fmt_tick(y)}</title>"
            parts.append(
                f'<circle class="{fcls}" cx="{px(x)}" cy="{py(y)}" r="2.5">{title}</circle>'
            )
    parts.append("</svg>")
    return Raw("".join(parts))


def legend(labels: Sequence[str], dashed: Sequence[bool] | None = None) -> Raw:
    """The legend strip matching :func:`line_chart` series order."""
    items = []
    for i, label in enumerate(labels):
        style = ' style="opacity:0.65"' if dashed and dashed[i] else ""
        items.append(
            f'<span><span class="key k{i % 6}"{style}></span>{esc(label)}</span>'
        )
    return Raw(f'<div class="legend">{"".join(items)}</div>')


# ---------------------------------------------------------------------------
# flamegraph (Chrome trace_event -> icicle)
# ---------------------------------------------------------------------------

_ROW_H = 16


def flamegraph(trace: Mapping, *, w: int = 920, max_rows: int = 24) -> Raw:
    """An icicle chart of a Chrome ``trace_event`` document.

    Consumes the format :func:`repro.obs.sinks.chrome_trace_dict` emits:
    complete events (``ph: "X"``) carry ``ts``/``dur`` microseconds and a
    ``tid`` track; depth comes from the embedded ``args.path`` when present
    (the exporter writes the full span path there), falling back to 0.
    Tracks stack vertically, deepest spans at the bottom of each track;
    every rectangle carries a ``<title>`` tooltip with path and duration.
    """
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        return Raw('<p class="empty">(no span events in the trace)</p>')
    t0 = min(float(e["ts"]) for e in events)
    t1 = max(float(e["ts"]) + float(e.get("dur", 0.0)) for e in events)
    span_us = max(t1 - t0, 1e-9)

    # group by track, order rows: (track, depth)
    rows: dict[tuple[int, int], list[dict]] = {}
    for e in events:
        depth = str(e.get("args", {}).get("path", e.get("name", ""))).count("/")
        rows.setdefault((int(e.get("tid", 0)), depth), []).append(e)
    row_keys = sorted(rows)[:max_rows]
    row_of = {key: i for i, key in enumerate(row_keys)}
    h = _ROW_H * len(row_of) + 18

    parts = [
        f'<svg class="flame" role="img" viewBox="0 0 {w} {h}" width="{w}" height="{h}"'
        f' aria-label="derivation flamegraph, {len(events)} spans">'
    ]
    clipped = 0
    for key, evs in rows.items():
        if key not in row_of:
            clipped += len(evs)
            continue
        y = row_of[key] * _ROW_H
        for e in evs:
            x = (float(e["ts"]) - t0) / span_us * w
            bw = max(float(e.get("dur", 0.0)) / span_us * w, 0.5)
            cat = str(e.get("cat", e.get("name", "")))
            color = f"b{sum(cat.encode()) % 6}"
            path = str(e.get("args", {}).get("path", e.get("name", "")))
            label = ""
            name = str(e.get("name", ""))
            if bw > 7 * len(name) and bw > 30:
                label = (
                    f'<text x="{round(x + 3, 1)}" y="{y + _ROW_H - 4}">{esc(name)}</text>'
                )
            parts.append(
                f'<rect class="{color}" x="{round(x, 2)}" y="{y}"'
                f' width="{round(bw, 2)}" height="{_ROW_H - 1}">'
                f"<title>{esc(path)}: {esc(fmt_us(float(e.get('dur', 0.0))))}"
                f"</title></rect>{label}"
            )
    parts.append(
        f'<text x="0" y="{h - 4}">{esc(fmt_us(span_us))} total'
        + (f" · {clipped} spans clipped" if clipped else "")
        + "</text>"
    )
    parts.append("</svg>")
    return Raw("".join(parts))
