"""Command-line front-end: ``iolb`` (or ``python -m repro.cli``).

Subcommands::

    iolb list                         # kernels and tiled algorithms
    iolb derive mgs [--eval M=100,N=50,S=256] [--cert cert.json]
    iolb cert check cert.json [--json report.json]  # independent re-check
    iolb validate mgs [--params M=8,N=5]
    iolb simulate mgs --params M=8,N=6 --cache 16 [--policy belady]
    iolb tiled tiled_mgs --params M=24,N=16 --cache 256
    iolb tune tiled_mgs --params M=24,N=16 --cache 256 [--jobs 4 --mode coarse]
    iolb verify [mgs|all] --trials 25 --seed 0 [--budget-seconds T --json out.json]
    iolb stats metrics.json [other.json]   # summarize / diff --metrics-json dumps
    iolb bench [NAMES...] [--repeats 5 --json out.json --check [BASELINE]
               --report trends.html --snapshot]   # performance history & gating
    iolb lint [mgs|all|FILE] [--json out.json --color always]  # static analysis
    iolb explore [--out report.html --metrics m.json --lint l.json
                 --cert-report r.json --trace t.json --check-inputs]
                                      # one self-contained HTML system report
    iolb serve [--port 8787 --workers 4 --cache-dir DIR --ttl 3600
               --max-entries N --preload]   # long-running derivation service
    iolb fig4 / iolb fig5             # regenerate the paper's tables

``tiled`` and ``tune`` support a persistent result cache: ``--cache-dir``
(default from ``$IOLB_CACHE_DIR``) enables it, ``--no-cache`` disables it.

``derive``, ``tune``, ``verify``, ``simulate`` and ``tiled`` accept the
profiling flags ``--profile`` (span tree + counters on **stderr**; stdout is
byte-identical to an unprofiled run), ``--metrics-json PATH`` (the
``iolb-metrics/1`` dump ``iolb stats`` consumes) and ``--trace-out PATH``
(Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
import sys
from typing import Mapping

from . import obs
from .bounds import derive, measure_tiled_io, tune_block_size
from .cache import default_cache_dir, open_memo
from .cdag import build_cdag, check_program_deps, check_spec_matches_runner
from .ir import Tracer
from .kernels import KERNELS, TILED_ALGORITHMS, get_kernel, get_tiled
from .pebble import play_schedule
from .report import render_fig4, render_fig5, render_table

__all__ = ["main"]


def _parse_assign(text: str) -> dict[str, int]:
    """Parse ``M=8,N=5`` into a dict; argparse ``type=`` for param flags.

    Raises :class:`argparse.ArgumentTypeError` naming the offending token so
    malformed input (``M=8,N`` or ``M=x``) yields a clean usage error
    instead of a traceback.
    """
    out: dict[str, int] = {}
    if not text:
        return out
    for part in text.split(","):
        k, eq, v = part.partition("=")
        k = k.strip()
        if not eq or not k:
            raise argparse.ArgumentTypeError(
                f"bad assignment {part.strip()!r} (expected NAME=INTEGER)"
            )
        try:
            out[k] = int(v)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad value in {part.strip()!r}: {v.strip()!r} is not an integer"
            ) from None
    return out


def _parse_codes(text: str) -> tuple[str, ...]:
    """Parse ``A009,A010`` into validated diagnostic codes.

    Argparse ``type=`` for ``iolb lint --select/--ignore``; unknown codes
    become a clean usage error listing the catalogue.
    """
    from .analysis import CODES

    codes = tuple(c.strip() for c in text.split(",") if c.strip())
    bad = sorted(c for c in codes if c not in CODES)
    if not codes or bad:
        raise argparse.ArgumentTypeError(
            f"unknown diagnostic code(s): {', '.join(bad) or '(none given)'};"
            f" valid codes: {', '.join(sorted(CODES))}"
        )
    return codes


def cmd_list(args) -> int:
    print("kernels:")
    for name, k in sorted(KERNELS.items()):
        print(f"  {name:10s} {k.description}")
    print("tiled algorithms:")
    for name, t in sorted(TILED_ALGORITHMS.items()):
        print(f"  {name:10s} {t.description}")
    return 0


def cmd_derive(args) -> int:
    kern = get_kernel(args.kernel)
    rep = derive(kern)
    # `--cert -` hands stdout to the certificate; human output moves to
    # stderr (same convention as `iolb lint --json -`).
    out = sys.stderr if args.cert_path == "-" else sys.stdout
    print(rep.summary(), file=out)
    if args.eval:
        env = args.eval
        print(f"\nevaluated at {env}:", file=out)
        rows = []
        for b in rep.all_bounds():
            try:
                rows.append([b.method, b.evaluate(env), b.condition])
            except (ZeroDivisionError, KeyError) as e:
                rows.append([b.method, f"n/a ({e})", b.condition])
        print(render_table(["method", "Q >=", "condition"], rows), file=out)
    if args.cert_path:
        from .cert import build_certificate, certificate_json

        payload = certificate_json(
            build_certificate(rep, kern.program, kern.default_params)
        )
        if args.cert_path == "-":
            sys.stdout.write(payload)
        else:
            with open(args.cert_path, "w") as fh:
                fh.write(payload)
            print(f"certificate written to {args.cert_path}", file=sys.stderr)
    return 0


def cmd_cert_check(args) -> int:
    """Independently re-verify an ``iolb-cert/1`` document."""
    import json

    from .cache import ENGINE_VERSION
    from .cert import check_certificate

    try:
        with open(args.certificate) as fh:
            cert = json.load(fh)
    except (OSError, ValueError) as e:
        raise SystemExit(f"iolb cert check: cannot read {args.certificate}: {e}") from None
    rep = check_certificate(cert, engine_version=ENGINE_VERSION)
    out = sys.stderr if args.json_path == "-" else sys.stdout
    print(rep.summary(), file=out)
    if args.json_path:
        payload = json.dumps(rep.to_dict(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"check report written to {args.json_path}", file=sys.stderr)
    return rep.exit_code()


def cmd_validate(args) -> int:
    kern = get_kernel(args.kernel)
    params = dict(args.params) if args.params else dict(kern.default_params)
    if kern.validate:
        kern.validate(params)
        print(f"{kern.name}: numeric validation ok at {params}")
    ok, msg = check_spec_matches_runner(kern.program, params)
    print(f"{kern.name}: spec-vs-runner trace: {msg}")
    diff = check_program_deps(kern.program, params)
    print(f"{kern.name}: CDAG check: {diff.summary()}")
    return 0 if ok and diff.ok() else 1


def cmd_simulate(args) -> int:
    kern = get_kernel(args.kernel)
    params = dict(args.params) if args.params else dict(kern.default_params)
    g = build_cdag(kern.program, params)
    t = Tracer()
    kern.program.runner(params, t)
    res = play_schedule(g, t.schedule, args.cache, args.policy)
    print(f"{kern.name} at {params}, S={args.cache}, policy={args.policy}:")
    print(f"  pebble-game loads: {res.loads} (computes={res.computes})")
    rep = derive(kern)
    env = dict(params)
    env["S"] = args.cache
    best, val = rep.best(env)
    print(f"  best lower bound:  {val:.1f}  [{best.method}]")
    return 0


def _memo_from(args):
    return open_memo(getattr(args, "cache_dir", None), enabled=not getattr(args, "no_cache", False))


def cmd_tiled(args) -> int:
    alg = get_tiled(args.algorithm)
    params = args.params
    memo = _memo_from(args)
    meas = measure_tiled_io(alg, params, args.cache, policy=args.policy, memo=memo)
    print(f"{alg.name} at {params}, S={args.cache}, B={meas.block}:")
    print(f"  measured loads: {meas.stats.loads}  stores: {meas.stats.stores}")
    print(f"  predicted reads ~ {meas.predicted_reads:.0f}")
    print(f"  predicted total ~ {meas.predicted_total:.0f}  [{alg.cache_condition}]")
    if memo is not None:
        print(f"  memo: {memo.hits} hit(s), {memo.misses} miss(es) [{memo.cache_dir}]")
    return 0


def cmd_tune(args) -> int:
    alg = get_tiled(args.algorithm)
    params = args.params
    memo = _memo_from(args)
    res = tune_block_size(
        alg,
        params,
        args.cache,
        policy=args.policy,
        b_max=args.b_max,
        jobs=args.jobs,
        mode=args.mode,
        stride=args.stride,
        memo=memo,
    )
    print(f"{alg.name} at {params}, S={args.cache} ({res.mode} sweep, {len(res.evaluated)} points):")
    print(f"  best block:     B={res.best_block}  loads={res.best_loads}")
    print(
        f"  analytic block: B={res.analytic_block}  loads={res.analytic_loads}"
        f"  (gap {res.analytic_gap:.3f}x)"
    )
    if memo is not None:
        print(f"  memo: {memo.hits} hit(s), {memo.misses} miss(es) [{memo.cache_dir}]")
    return 0


def cmd_regimes(args) -> int:
    from .bounds import regime_table

    kern = get_kernel(args.kernel)
    env = args.params
    rep = derive(kern)
    s_values = [1 << k for k in range(2, args.max_log_s + 1)]
    regimes = regime_table(rep, env, s_values)
    rows = [[f"{r.s_lo}..{r.s_hi}", r.method, r.value_at_lo] for r in regimes]
    print(render_table(["S range", "binding method", "Q >= (at range start)"], rows,
                       title=f"{kern.name} bound regimes at {env}"))
    return 0


def cmd_selfcheck(args) -> int:
    from .selfcheck import selfcheck

    kern = get_kernel(args.kernel)
    params = args.params or None
    rep = selfcheck(kern, params)
    print(rep.summary())
    return 0 if rep.ok() else 1


def cmd_parse(args) -> int:
    import pathlib

    from .bounds import derive as derive_fn
    from .frontend import compile_source
    from .kernels.common import Kernel as KernelRec

    if args.figure:
        from .frontend.sources import FIGURE_SHAPES, FIGURE_SOURCES

        src = FIGURE_SOURCES[args.figure]
        shapes = FIGURE_SHAPES[args.figure]
        name = args.figure + "_parsed"
    else:
        src = pathlib.Path(args.file).read_text()
        shapes = None
        name = pathlib.Path(args.file).stem
    prog, _ast = compile_source(src, name, shapes)
    print(f"parsed {name}: params {prog.params}")
    for s in prog.statements:
        print(f"  {s.name:8s} dims={s.dims} reads={list(s.reads)} writes={list(s.writes)}")
    if args.derive:
        small = args.small or None
        if small is None:
            raise SystemExit("--derive requires --small M=...,N=... for the dataflow run")
        kern = KernelRec(program=prog, dominant=args.derive, default_params=small)
        sample = {k: v * 256 for k, v in small.items()}
        rep = derive_fn(kern, small_params=small, sample_params=sample)
        print()
        print(rep.summary())
    return 0


def cmd_lint(args) -> int:
    """Static analysis with source-span diagnostics (see repro.analysis)."""
    import json
    import pathlib

    from .analysis import (
        AnalysisReport,
        LINT_SCHEMA,
        check_source,
        parse_directives,
    )
    from .frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES

    def builtin(name: str):
        k = KERNELS.get(name)
        return (
            name,
            FIGURE_SOURCES[name],
            FIGURE_SHAPE_EXPRS.get(name),
            dict(args.params) if args.params else (
                dict(k.default_params) if k else None
            ),
            k.dominant if k else None,
            None,
        )

    entries: list[tuple[str, str | None, AnalysisReport]] = []
    if args.target == "tiled":
        # legality-only target: every tiled algorithm's proposed schedule
        # (symbolic where the algorithm exposes one, traced otherwise)
        # checked against the base kernel's dependence polyhedra
        from .analysis.deps import check_tiled_legality

        params = dict(args.params) if args.params else None
        for name, alg in sorted(TILED_ALGORITHMS.items()):
            for b in (2, 3):
                diags, mode = check_tiled_legality(alg, b, params=params)
                label = f"{name}[B={b}]"
                rep = AnalysisReport(program=label, params=params or {})
                rep.diagnostics = list(diags)
                rep.pass_counts[f"deps.legality.{mode}"] = len(diags)
                entries.append((label, None, rep))
    else:
        if args.target == "all":
            targets = [builtin(name) for name in FIGURE_SOURCES]
        elif args.target in FIGURE_SOURCES:
            targets = [builtin(args.target)]
        else:
            path = pathlib.Path(args.target)
            if not path.exists():
                raise SystemExit(
                    f"iolb lint: no builtin kernel or file named"
                    f" {args.target!r} (builtins:"
                    f" {', '.join(sorted(FIGURE_SOURCES))}, 'all', or"
                    " 'tiled')"
                )
            src = path.read_text()
            # honor in-source `// shape:` / `// dominant:` / `// schedule:`
            # directives so a lint target is self-contained (see
            # repro.analysis.directives)
            dirs = parse_directives(src)
            targets = [
                (path.stem, src, dirs.shapes,
                 dict(args.params) if args.params else None, dirs.dominant,
                 dirs.schedule)
            ]
        for name, src, shapes, params, dominant, schedule in targets:
            rep, _prog = check_source(
                src, name=name, params=params, shapes=shapes,
                dominant=dominant, schedule=schedule,
            )
            entries.append((name, src, rep))

    # --select / --ignore narrow every report before rendering, JSON
    # serialization and exit-code computation alike
    for _, _, rep in entries:
        if args.select:
            rep.diagnostics = [
                d for d in rep.diagnostics if d.code in args.select
            ]
        if args.ignore:
            rep.diagnostics = [
                d for d in rep.diagnostics if d.code not in args.ignore
            ]

    if args.color == "always":
        use_color = True
    elif args.color == "never":
        use_color = False
    else:
        use_color = sys.stdout.isatty()
    # `--json -` hands stdout to the JSON document; human output moves
    # to stderr (same convention as `iolb bench --json -`).
    out = sys.stderr if args.json_path == "-" else sys.stdout

    rc = 0
    reports = {}
    for i, (name, src, rep) in enumerate(entries):
        reports[name] = rep
        if i:
            print(file=out)
        print(rep.render(source=src, color=use_color), file=out)
        rc = max(rc, rep.exit_code())

    if args.json_path:
        if len(reports) == 1:
            doc = next(iter(reports.values())).to_dict()
        else:
            doc = {
                "schema": LINT_SCHEMA,
                "reports": {n: r.to_dict() for n, r in reports.items()},
            }
        payload = json.dumps(doc, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"lint report written to {args.json_path}", file=sys.stderr)
    return rc


def cmd_verify(args) -> int:
    import json

    from .verify import run_verify

    if args.target == "all":
        kernels, tiled, fuzz = None, None, args.fuzz
    elif args.target in TILED_ALGORITHMS:
        kernels, tiled, fuzz = [], [args.target], args.fuzz or 0
    else:
        get_kernel(args.target)  # raises with the available names
        kernels, tiled, fuzz = [args.target], [], args.fuzz or 0
    rep = run_verify(
        kernels,
        tiled,
        trials=args.trials,
        seed=args.seed,
        budget_seconds=args.budget_seconds,
        fuzz_programs=fuzz,
        shrink=not args.no_shrink,
    )
    print(rep.summary())
    if args.json_path:
        payload = json.dumps(rep.to_dict(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"report written to {args.json_path}")
    return 0 if rep.ok() else 1


def cmd_stats(args) -> int:
    import json

    def load(path: str) -> dict:
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError) as e:
            raise SystemExit(f"iolb stats: cannot read {path}: {e}") from None

    try:
        first = load(args.dump)
        if args.dump_b:
            print(obs.diff_metrics(first, load(args.dump_b), threshold_pct=args.threshold))
        else:
            print(obs.summarize_metrics(first, top=args.top))
    except ValueError as e:
        raise SystemExit(f"iolb stats: {e}") from None
    return 0


def _default_history_dir() -> str:
    import os

    return os.environ.get("IOLB_BENCH_HISTORY") or "benchmarks/history"


def cmd_bench(args) -> int:
    """Run the benchmark suite; optionally record, gate, and report on it.

    Order matters: the baseline for ``--check`` is resolved *before* the
    fresh record is appended to the history, so a run never gates against
    itself.  The obs registry is owned by the suite runner for the duration
    (which is why ``bench`` takes no ``--profile`` flag).
    """
    import json

    from .obs import bench as obs_bench
    from .obs import history as obs_history
    from .obs.dashboard import render_dashboard
    from .obs.sinks import _fmt_us

    try:
        suite = obs_bench.select_benchmarks(obs_bench.default_suite(), args.benchmarks)
    except ValueError as e:
        raise SystemExit(f"iolb bench: {e}") from None
    history_dir = args.history_dir or _default_history_dir()
    # `--json -` hands stdout to the record; human output moves to stderr.
    out = sys.stderr if args.json_path == "-" else sys.stdout

    results = obs_bench.run_suite(
        suite,
        repeats=args.repeats,
        warmup=args.warmup,
        progress=lambda name: print(f"bench: {name} ...", file=sys.stderr),
    )
    record = obs_bench.bench_record(
        results, repeats=args.repeats, warmup=args.warmup
    )
    print(
        render_table(
            ["benchmark", "median", "min", "MAD", "cpu median", "counters"],
            [
                [
                    r.name,
                    _fmt_us(r.wall_s.median * 1e6),
                    _fmt_us(r.wall_s.min * 1e6),
                    _fmt_us(r.wall_s.mad * 1e6),
                    _fmt_us(r.cpu_s.median * 1e6),
                    len(r.counters),
                ]
                for r in results
            ],
            title=(
                f"iolb bench: {len(results)} benchmark(s),"
                f" {args.repeats} repeat(s) + {args.warmup} warmup"
            ),
        ),
        file=out,
    )

    rc = 0
    if args.check_baseline is not None:
        target = args.check_baseline or history_dir
        try:
            baseline = obs_history.resolve_baseline(target, suite=record["suite"])
            report = obs_history.compare_records(
                baseline,
                record,
                threshold_pct=args.threshold,
                mad_k=args.mad_k,
                counters_only=args.counters_only,
            )
        except (OSError, ValueError) as e:
            raise SystemExit(f"iolb bench --check: {e}") from None
        print(file=out)
        print(report.summary(), file=out)
        rc = 0 if report.ok() else 1

    if args.json_path:
        payload = json.dumps(record, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"bench record written to {args.json_path}", file=sys.stderr)

    appended = False
    if not args.no_history:
        path = obs_history.append_entry(record, history_dir)
        appended = True
        print(f"history entry appended: {path}", file=sys.stderr)

    if args.snapshot:
        snap = f"BENCH_{record['created'][:10]}.json"
        with open(snap, "w") as fh:
            fh.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"snapshot written: {snap}", file=sys.stderr)

    if args.report_path:
        hist = obs_history.load_history(history_dir, suite=record["suite"])
        if not appended:
            hist.append(record)
        html = render_dashboard(hist)
        with open(args.report_path, "w") as fh:
            fh.write(html)
        print(
            f"trend dashboard ({len(hist)} record(s)) written to {args.report_path}",
            file=sys.stderr,
        )
    return rc


def cmd_explore(args) -> int:
    """Render the whole-system explorer page from the JSON artifacts.

    Every artifact is optional — absent sections render a placeholder —
    but a *named* artifact that is unreadable or fails its schema check is
    a problem: it is listed on stderr, surfaced in the page banner, and
    under ``--check-inputs`` turns into a nonzero exit with no page
    written at all (the CI smoke against silent partial reports).
    """
    import os

    from .obs import explore as obs_explore

    bench_history = args.bench_history
    if bench_history is None and os.path.isdir(_default_history_dir()):
        bench_history = _default_history_dir()

    data = obs_explore.load_inputs(
        metrics=args.metrics,
        lint=args.lint,
        certs=args.cert_reports,
        trace=args.trace,
        curves=args.curves,
        bench_history=bench_history,
    )

    if args.check_inputs:
        named = (
            len(args.metrics)
            + len(args.cert_reports)
            + sum(1 for a in (args.lint, args.trace, args.curves, bench_history) if a)
        )
        for problem in data.problems:
            print(f"iolb explore: {problem}", file=sys.stderr)
        print(
            f"iolb explore --check-inputs: {named} artifact(s) named,"
            f" {data.loaded_count()} loaded, {len(data.problems)} problem(s)",
            file=sys.stderr,
        )
        return 1 if data.problems else 0

    if data.curves is None and not args.no_curves:
        kernels = [k for k in args.kernels.split(",") if k] or None
        s_values = [int(s) for s in args.curves_s.split(",") if s] or None
        try:
            data.curves = obs_explore.compute_curves(
                kernels=kernels,
                **({"s_values": tuple(s_values)} if s_values else {}),
            )
        except KeyError as e:
            raise SystemExit(f"iolb explore: {e.args[0]}") from None

    for problem in data.problems:
        print(f"iolb explore: warning: {problem}", file=sys.stderr)
    import datetime

    stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
        "generated %Y-%m-%dT%H:%M:%SZ"
    )
    html = obs_explore.render_explore(data, title=args.title, generated=stamp)
    with open(args.out, "w") as fh:
        fh.write(html)
    print(
        f"explore report written to {args.out}"
        f" ({data.loaded_count()} artifact(s), {len(data.problems)} problem(s))"
    )
    return 0


def cmd_serve(args) -> int:
    """Run the sharded, batched derivation service (see docs/SERVE.md)."""
    import time

    from .serve import IolbServer

    memo_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    srv = IolbServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        memo_dir=memo_dir,
        ttl_s=args.ttl,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        preload=args.preload,
        queue_cap=args.queue_cap,
        batch_max=args.batch_max,
    )
    srv.start()
    host, port = srv.address
    print(f"iolb serve: listening on http://{host}:{port}", file=sys.stderr)
    print(
        f"  workers={args.workers or 'inline'}  backend={memo_dir or 'off'}"
        + (f" (ttl={args.ttl}s)" if args.ttl else "")
        + (" preloaded" if args.preload and memo_dir else ""),
        file=sys.stderr,
    )
    print(
        "  POST /v1/{derive,simulate,tune,lint}"
        "   GET /healthz /v1/stats /v1/metrics /status /status.json",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("iolb serve: shutting down", file=sys.stderr)
    finally:
        srv.shutdown()
        if args.metrics_json:
            obs.write_metrics_json(
                args.metrics_json, reg=srv.registry, meta={"command": "serve"}
            )
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
    return 0


def cmd_fig4(args) -> int:
    print(render_fig4())
    return 0


def cmd_fig5(args) -> int:
    print(render_fig5())
    return 0


def _dispatch(args) -> int:
    """Run the selected subcommand, wrapped in the obs layer when profiling.

    The profile tree and file notices go to stderr so a profiled command's
    stdout stays byte-identical to the unprofiled run (pinned by the golden
    differential tests).  The registry is always disabled and cleared
    afterwards — in-process callers (tests) must see no leaked state.
    """
    profiling = bool(
        getattr(args, "profile", False)
        or getattr(args, "metrics_json", None)
        or getattr(args, "trace_out", None)
    ) and args.cmd != "serve"  # serve owns a private registry and its own dump
    if not profiling:
        return args.fn(args)
    obs.enable()
    try:
        with obs.span(f"cli.{args.cmd}", cmd=args.cmd):
            rc = args.fn(args)
        if getattr(args, "profile", False):
            print(obs.render_tree(), file=sys.stderr)
        if getattr(args, "metrics_json", None):
            obs.write_metrics_json(args.metrics_json, meta={"command": args.cmd})
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
        if getattr(args, "trace_out", None):
            obs.write_chrome_trace(args.trace_out)
            print(f"chrome trace written to {args.trace_out}", file=sys.stderr)
        return rc
    finally:
        obs.disable()
        obs.reset()


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="iolb",
        description="I/O lower bounds via the hourglass dependency pattern (SPAA 2024 reproduction)",
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    def add_profile_flags(sp) -> None:
        sp.add_argument(
            "--profile",
            action="store_true",
            help="print a span tree + counters to stderr after the run",
        )
        sp.add_argument(
            "--metrics-json",
            metavar="PATH",
            dest="metrics_json",
            default=None,
            help="write the machine-readable iolb-metrics/1 dump to PATH",
        )
        sp.add_argument(
            "--trace-out",
            metavar="PATH",
            dest="trace_out",
            default=None,
            help="write a Chrome trace_event JSON (chrome://tracing, Perfetto)",
        )

    sub.add_parser("list", help="list kernels").set_defaults(fn=cmd_list)

    d = sub.add_parser("derive", help="derive parametric lower bounds")
    d.add_argument("kernel")
    d.add_argument("--eval", default="", type=_parse_assign, help="e.g. M=100,N=50,S=256")
    d.add_argument(
        "--cert",
        metavar="PATH",
        dest="cert_path",
        default=None,
        help="write the iolb-cert/1 proof certificate to PATH ('-' for stdout)",
    )
    add_profile_flags(d)
    d.set_defaults(fn=cmd_derive)

    ct = sub.add_parser(
        "cert", help="proof-certificate tooling (independent checker)"
    )
    ct_sub = ct.add_subparsers(dest="cert_cmd", required=True)
    cc = ct_sub.add_parser(
        "check", help="re-verify an iolb-cert/1 file without the engine"
    )
    cc.add_argument("certificate", help="certificate file (from derive --cert)")
    cc.add_argument(
        "--json",
        metavar="PATH",
        dest="json_path",
        default=None,
        help="write the iolb-cert-report/1 report to PATH ('-' for stdout)",
    )
    add_profile_flags(cc)
    cc.set_defaults(fn=cmd_cert_check)

    v = sub.add_parser("validate", help="numeric + CDAG validation")
    v.add_argument("kernel")
    v.add_argument("--params", default="", type=_parse_assign)
    v.set_defaults(fn=cmd_validate)

    s = sub.add_parser("simulate", help="pebble-game I/O of the program order")
    s.add_argument("kernel")
    s.add_argument("--params", default="", type=_parse_assign)
    s.add_argument("--cache", type=int, required=True)
    s.add_argument("--policy", default="belady", choices=["lru", "belady"])
    add_profile_flags(s)
    s.set_defaults(fn=cmd_simulate)

    def add_memo_flags(sp) -> None:
        sp.add_argument(
            "--cache-dir",
            default=None,
            dest="cache_dir",
            help="persistent result-cache directory (default: $IOLB_CACHE_DIR)",
        )
        sp.add_argument(
            "--no-cache",
            action="store_true",
            dest="no_cache",
            help="disable the persistent result cache even if $IOLB_CACHE_DIR is set",
        )

    t = sub.add_parser("tiled", help="measure a tiled algorithm's I/O")
    t.add_argument("algorithm")
    t.add_argument("--params", required=True, type=_parse_assign)
    t.add_argument("--cache", type=int, required=True)
    t.add_argument("--policy", default="belady", choices=["lru", "belady"])
    add_memo_flags(t)
    add_profile_flags(t)
    t.set_defaults(fn=cmd_tiled)

    tu = sub.add_parser("tune", help="sweep block sizes for a tiled algorithm")
    tu.add_argument("algorithm")
    tu.add_argument("--params", required=True, type=_parse_assign)
    tu.add_argument("--cache", type=int, required=True)
    tu.add_argument("--policy", default="belady", choices=["lru", "belady"])
    tu.add_argument("--b-max", type=int, default=None, dest="b_max")
    tu.add_argument("--jobs", type=int, default=1, help="process-pool width (default serial)")
    tu.add_argument("--mode", default="exhaustive", choices=["exhaustive", "coarse"])
    tu.add_argument("--stride", type=int, default=None, help="coarse-grid stride (default ~sqrt(b_max))")
    add_memo_flags(tu)
    add_profile_flags(tu)
    tu.set_defaults(fn=cmd_tune)

    rg = sub.add_parser("regimes", help="which bound binds at which S (§5.1 style)")
    rg.add_argument("kernel")
    rg.add_argument("--params", required=True, type=_parse_assign, help="e.g. M=10000,N=5000")
    rg.add_argument("--max-log-s", type=int, default=22, dest="max_log_s")
    rg.set_defaults(fn=cmd_regimes)

    sc = sub.add_parser("selfcheck", help="run the full validation battery")
    sc.add_argument("kernel")
    sc.add_argument("--params", default="", type=_parse_assign)
    sc.set_defaults(fn=cmd_selfcheck)

    vf = sub.add_parser(
        "verify", help="differential + metamorphic verification battery"
    )
    vf.add_argument(
        "target",
        nargs="?",
        default="all",
        help="kernel name, tiled algorithm name, or 'all' (default)",
    )
    vf.add_argument("--trials", type=int, default=25, help="random trials per subject")
    vf.add_argument("--seed", type=int, default=0)
    vf.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        dest="budget_seconds",
        help="wall-clock budget; partial runs are flagged in the report",
    )
    vf.add_argument(
        "--fuzz",
        type=int,
        default=None,
        help="number of random fuzz programs (default: --trials; 'all' only)",
    )
    vf.add_argument(
        "--json",
        metavar="PATH",
        dest="json_path",
        help="write the machine-readable report to PATH ('-' for stdout)",
    )
    vf.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip counterexample shrinking on failure",
    )
    add_profile_flags(vf)
    vf.set_defaults(fn=cmd_verify)

    stp = sub.add_parser(
        "stats", help="summarize a --metrics-json dump, or diff two"
    )
    stp.add_argument("dump", help="metrics JSON file (from --metrics-json)")
    stp.add_argument(
        "dump_b",
        nargs="?",
        default=None,
        help="second dump: print a regression diff (B relative to A)",
    )
    stp.add_argument("--top", type=int, default=20, help="span rows in the summary")
    stp.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        help="diff only: hide span rows whose wall time moved < this %%",
    )
    stp.set_defaults(fn=cmd_stats)

    bn = sub.add_parser(
        "bench", help="performance suite: run, record history, gate, report"
    )
    bn.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names or group prefixes (e.g. derive.mgs, simulate); default: all",
    )
    bn.add_argument("--repeats", type=int, default=5, help="timed repeats per benchmark")
    bn.add_argument("--warmup", type=int, default=1, help="untimed warmup runs")
    bn.add_argument(
        "--json",
        metavar="PATH",
        dest="json_path",
        help="write the iolb-bench/1 record to PATH ('-' for stdout)",
    )
    bn.add_argument(
        "--check",
        nargs="?",
        metavar="BASELINE",
        const="",
        default=None,
        dest="check_baseline",
        help="regression-gate against BASELINE (a record file or history dir;"
        " default: the latest history entry); exits 1 on regression",
    )
    bn.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="timing regression threshold in percent (median vs median)",
    )
    bn.add_argument(
        "--mad-k",
        type=float,
        default=4.0,
        dest="mad_k",
        help="noise floor: median growth must also exceed K x MAD",
    )
    bn.add_argument(
        "--check-counters-only",
        action="store_true",
        dest="counters_only",
        help="gate on exact work counters only (machine-portable, for CI)",
    )
    bn.add_argument(
        "--history-dir",
        default=None,
        dest="history_dir",
        help="history store (default: $IOLB_BENCH_HISTORY or benchmarks/history)",
    )
    bn.add_argument(
        "--no-history",
        action="store_true",
        dest="no_history",
        help="do not append this run to the history store",
    )
    bn.add_argument(
        "--report",
        metavar="PATH",
        dest="report_path",
        help="write the self-contained HTML trend dashboard over the history",
    )
    bn.add_argument(
        "--snapshot",
        action="store_true",
        help="also write a BENCH_<date>.json snapshot in the current directory",
    )
    bn.set_defaults(fn=cmd_bench)

    ex = sub.add_parser(
        "explore",
        help="self-contained HTML explorer over every JSON artifact",
    )
    ex.add_argument(
        "--out", default="report.html", help="output HTML path (default: report.html)"
    )
    ex.add_argument(
        "--metrics",
        action="append",
        default=[],
        metavar="PATH",
        help="an iolb-metrics/1 dump (repeatable)",
    )
    ex.add_argument("--lint", metavar="PATH", help="an iolb-lint/1 report")
    ex.add_argument(
        "--cert-report",
        action="append",
        default=[],
        dest="cert_reports",
        metavar="PATH",
        help="an iolb-cert-report/1 check report (repeatable)",
    )
    ex.add_argument("--trace", metavar="PATH", help="a Chrome trace_event JSON")
    ex.add_argument(
        "--curves",
        metavar="PATH",
        help="a precomputed iolb-curves/1 JSON (skips the in-process sweep)",
    )
    ex.add_argument(
        "--bench-history",
        metavar="DIR",
        default=None,
        dest="bench_history",
        help="bench history directory or record file"
        " (default: the bench history dir when it exists)",
    )
    ex.add_argument(
        "--no-curves",
        action="store_true",
        dest="no_curves",
        help="skip the in-process bound-vs-measured sweep",
    )
    ex.add_argument(
        "--kernels",
        default="",
        help="comma-separated kernels for the curve sweep (default: paper five)",
    )
    ex.add_argument(
        "--curves-s",
        default="",
        dest="curves_s",
        help="comma-separated cache sizes for the sweep, e.g. 8,16,32,64",
    )
    ex.add_argument(
        "--check-inputs",
        action="store_true",
        dest="check_inputs",
        help="validate the named artifacts and exit nonzero on any problem"
        " instead of rendering a partial page",
    )
    ex.add_argument(
        "--title", default="iolb explore — system report", help="page title"
    )
    add_profile_flags(ex)
    ex.set_defaults(fn=cmd_explore)

    pr = sub.add_parser("parse", help="parse figure-style C code into the IR")
    grp = pr.add_mutually_exclusive_group(required=True)
    grp.add_argument("--file", help="path to a source file")
    grp.add_argument(
        "--figure",
        choices=["mgs", "qr_a2v", "qr_v2q", "gehd2", "gebd2"],
        help="use a bundled paper listing",
    )
    pr.add_argument("--derive", metavar="STMT", help="derive bounds for this statement")
    pr.add_argument(
        "--small", default="", type=_parse_assign,
        help="small params for dataflow, e.g. M=5,N=4",
    )
    pr.set_defaults(fn=cmd_parse)

    ln = sub.add_parser(
        "lint", help="static analysis with source-span diagnostics"
    )
    ln.add_argument(
        "target",
        help="builtin kernel name (mgs, qr_a2v, ...), a source file path,"
        " 'all' for every builtin kernel, or 'tiled' for schedule"
        " legality of every tiled algorithm",
    )
    ln.add_argument(
        "--select",
        default=(),
        type=_parse_codes,
        metavar="CODES",
        help="only report these comma-separated diagnostic codes,"
        " e.g. A009,A010",
    )
    ln.add_argument(
        "--ignore",
        default=(),
        type=_parse_codes,
        metavar="CODES",
        help="suppress these comma-separated diagnostic codes",
    )
    ln.add_argument(
        "--params",
        default="",
        type=_parse_assign,
        help="check parameters, e.g. M=8,N=5 (default: the kernel's)",
    )
    ln.add_argument(
        "--json",
        metavar="PATH",
        dest="json_path",
        help="write the iolb-lint/1 report to PATH ('-' for stdout)",
    )
    ln.add_argument(
        "--color",
        default="auto",
        choices=["auto", "always", "never"],
        help="colorize the human-readable report (default: tty detection)",
    )
    add_profile_flags(ln)
    ln.set_defaults(fn=cmd_lint)

    sv = sub.add_parser(
        "serve", help="long-running sharded derivation service (HTTP+JSON)"
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8787, help="0 picks an ephemeral port")
    sv.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes sharded by request key (0 = execute inline)",
    )
    add_memo_flags(sv)
    sv.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="result-backend entry time-to-live in seconds (default: no expiry)",
    )
    sv.add_argument(
        "--max-entries",
        type=int,
        default=None,
        dest="max_entries",
        help="result-backend size cap (oldest entries evicted beyond this)",
    )
    sv.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        dest="max_bytes",
        help="result-backend byte cap (oldest entries evicted beyond this)",
    )
    sv.add_argument(
        "--preload",
        action="store_true",
        help="warm-start: read the whole result backend into memory at boot",
    )
    sv.add_argument(
        "--queue-cap",
        type=int,
        default=128,
        dest="queue_cap",
        help="bounded per-shard queue depth (full queue answers 503)",
    )
    sv.add_argument(
        "--batch-max",
        type=int,
        default=8,
        dest="batch_max",
        help="max jobs a worker drains per queue wakeup (micro-batching)",
    )
    sv.add_argument(
        "--metrics-json",
        metavar="PATH",
        dest="metrics_json",
        default=None,
        help="write the final iolb-metrics/1 dump to PATH on shutdown",
    )
    sv.set_defaults(fn=cmd_serve)

    sub.add_parser("fig4", help="regenerate Figure 4").set_defaults(fn=cmd_fig4)
    sub.add_parser("fig5", help="regenerate Figure 5").set_defaults(fn=cmd_fig5)

    args = p.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # downstream pipe (head, less) closed early: exit quietly like a
        # well-behaved unix tool
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
