"""Symbolic dependence analysis: polyhedra, distances, schedule legality.

This module lifts the analyzer from enumeration to *parametric* reasoning,
the way IOLB (Olivry et al.) and the near-optimal LU work reason about data
movement: every fact below is decided by Fourier–Motzkin elimination over
symbolic parameters, with integer enumeration used only to produce concrete
witnesses for diagnostics.

* :func:`build_dependences` — construct the dependence polyhedra of a
  lowered :class:`~repro.ir.Program` directly from its memory accesses:
  for every ordered statement pair and every shared array, the flow
  (write→read), anti (read→write) and output (write→write) relations.  A
  :class:`DepPolyhedron` holds the relation as a disjunction of
  :class:`~repro.polyhedral.iset.ISet` branches (one per lexicographic
  precedence level of the original 2d+1 schedule), with source and target
  dimensions renamed apart (``k`` → ``k__s`` / ``k__t``).  Branches proved
  integer-empty by :meth:`ISet.definitely_empty` are kept separately so the
  differential self-check can replay them.
* :meth:`DepPolyhedron.distance_signs` — per-level symbolic signs of the
  dependence distance vector (``+``, ``0``, ``0+``, ``-``, ``0-``, ``*``),
  again via FM emptiness of the sign's complement.
* :func:`check_schedule` — the legality oracle behind diagnostics
  A009–A010: given a *proposed* schedule (flat 2d+1-style vectors, or
  guarded :class:`SchedulePiece` lists with block/tile ``floor`` dimensions),
  verify that every dependence target runs strictly after its source.  A
  violation set that FM cannot refute is searched for an integer witness at
  probe parameters: a witness is a hard A009 error with the concrete
  violated instance pair; a rationally-feasible set with no witness is an
  honest A010 "undecided" warning.
* :func:`check_order` — the enumeration-level cousin for explicit instance
  orders (pebble schedules, traced tiled executions).
* :func:`pass_deps` — the analyzer pass: emits the A011 dependence summary,
  runs the legality check when a schedule was proposed, and cross-checks
  every symbolic emptiness proof against enumeration (A012 — an A012 can
  only mean a bug in one of the two decision procedures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .. import obs
from ..ir.program import Access, Program, Statement
from ..polyhedral.affine import LinExpr, aff, var
from ..polyhedral.iset import EQ, GE, Constraint, ISet
from ..polyhedral.lexorder import lex_le_branches, lex_lt_branches
from .diagnostics import Diagnostic

__all__ = [
    "DepPolyhedron",
    "SchedulePiece",
    "ScheduleViolation",
    "build_dependences",
    "check_schedule",
    "check_order",
    "check_tiled_legality",
    "pass_deps",
]

#: default probe value per parameter for witness search (mirrors
#: ``repro.analysis.DEFAULT_PARAM`` without importing the package root)
PROBE_PARAM = 6

_SRC = "__s"
_TGT = "__t"

#: (kind, source access attribute, target access attribute)
_KINDS = (
    ("flow", "writes", "reads"),
    ("anti", "reads", "writes"),
    ("output", "writes", "writes"),
)


@dataclass(frozen=True)
class DepPolyhedron:
    """One dependence relation between two statements through one array.

    ``branches`` are the non-empty precedence branches (their union is the
    relation); ``pruned`` are branches Fourier–Motzkin proved integer-empty,
    kept for the differential self-check.  ``dims`` is the renamed source
    dims followed by the renamed target dims.
    """

    kind: str  # "flow" | "anti" | "output"
    src: str
    tgt: str
    array: str
    src_access: Access
    tgt_access: Access
    src_dims: tuple[str, ...]
    tgt_dims: tuple[str, ...]
    dims: tuple[str, ...]
    branches: tuple[ISet, ...]
    pruned: tuple[ISet, ...]

    def exists(self) -> bool:
        """Whether FM could not refute the relation (it may hold points)."""
        return bool(self.branches)

    def distance_signs(self, *, stop_at_carry: bool = False) -> tuple[str, ...]:
        """Symbolic sign of the distance per shared loop level.

        For each level where source and target use the same loop name, the
        sign of ``d__t - d__s`` over the whole relation: ``"+"`` / ``"0"`` /
        ``"-"`` when proved strict, ``"0+"`` / ``"0-"`` for weak bounds,
        ``"*"`` when FM proves neither side.  With ``stop_at_carry`` the
        scan stops after the first level whose sign is not ``"0"`` (the
        carrying level — classic dependence-vector shape).
        """
        signs: list[str] = []
        for ds, dt in zip(self.src_dims, self.tgt_dims):
            if ds != dt:
                break
            delta = var(f"{dt}{_TGT}") - var(f"{ds}{_SRC}")
            merged: str | None = None
            for br in self.branches:
                ge0 = br.with_constraints(
                    [Constraint(delta * -1 - 1, GE)]
                ).definitely_empty()
                le0 = br.with_constraints(
                    [Constraint(delta - 1, GE)]
                ).definitely_empty()
                if ge0 and le0:
                    s = "0"
                elif ge0:
                    pos = br.with_constraints(
                        [Constraint(delta * -1, GE)]
                    ).definitely_empty()
                    s = "+" if pos else "0+"
                elif le0:
                    neg = br.with_constraints(
                        [Constraint(delta, GE)]
                    ).definitely_empty()
                    s = "-" if neg else "0-"
                else:
                    s = "*"
                merged = s if merged in (None, s) else "*"
            signs.append(merged or "0")
            if stop_at_carry and signs[-1] != "0":
                break
        return tuple(signs)

    def __repr__(self) -> str:
        state = f"{len(self.branches)} branch(es)" if self.branches else "empty"
        return (
            f"Dep[{self.kind}] {self.src} -> {self.tgt}"
            f" via {self.array} ({state})"
        )


def _sched_vectors(
    src: Statement, tgt: Statement
) -> tuple[list[LinExpr], list[LinExpr]]:
    """Original 2d+1 schedule vectors, renamed apart and zero-padded."""
    a = _entries_to_exprs(src.schedule, {d: f"{d}{_SRC}" for d in src.dims})
    b = _entries_to_exprs(tgt.schedule, {d: f"{d}{_TGT}" for d in tgt.dims})
    n = max(len(a), len(b))
    a += [aff(0)] * (n - len(a))
    b += [aff(0)] * (n - len(b))
    return a, b


def _entries_to_exprs(
    entries: Sequence, rename: Mapping[str, str]
) -> list[LinExpr]:
    out: list[LinExpr] = []
    for e in entries:
        if isinstance(e, LinExpr):
            out.append(e.rename(rename))
        elif isinstance(e, int):
            out.append(aff(e))
        elif isinstance(e, str):
            neg = e.startswith("-")
            name = e[1:] if neg else e
            x = var(rename.get(name, name))
            out.append(x * -1 if neg else x)
        else:
            raise TypeError(f"bad schedule entry {e!r}")
    return out


def _build_one(
    src: Statement, tgt: Statement, kind: str, sacc: Access, tacc: Access
) -> DepPolyhedron | None:
    smap = {d: f"{d}{_SRC}" for d in src.dims}
    tmap = {d: f"{d}{_TGT}" for d in tgt.dims}
    dims = tuple(smap[d] for d in src.dims) + tuple(tmap[d] for d in tgt.dims)
    cons = list(src.domain().rename(smap).constraints)
    cons += list(tgt.domain().rename(tmap).constraints)
    for si, ti in zip(sacc.indices, tacc.indices):
        cons.append(Constraint(si.rename(smap) - ti.rename(tmap), EQ))
    theta_s, theta_t = _sched_vectors(src, tgt)
    branches: list[ISet] = []
    pruned: list[ISet] = []
    for br in lex_lt_branches(theta_s, theta_t):
        s = ISet(dims, cons + br)
        (pruned if s.definitely_empty() else branches).append(s)
    if not branches and not pruned:
        return None
    return DepPolyhedron(
        kind=kind,
        src=src.name,
        tgt=tgt.name,
        array=sacc.array,
        src_access=sacc,
        tgt_access=tacc,
        src_dims=src.dims,
        tgt_dims=tgt.dims,
        dims=dims,
        branches=tuple(branches),
        pruned=tuple(pruned),
    )


def build_dependences(program: Program) -> list[DepPolyhedron]:
    """All flow/anti/output dependence polyhedra of ``program``.

    Built from the memory accesses (not the declared flow deps) under the
    program's own 2d+1 schedule, entirely symbolically — no enumeration, no
    fixed parameter values.  Relations whose precedence is statically
    impossible are omitted; relations FM refuted branch-by-branch survive
    with ``branches == ()`` so callers can replay the emptiness proofs.
    """
    with obs.span("analysis.deps.build", program=program.name):
        out: list[DepPolyhedron] = []
        for src in program.statements:
            for tgt in program.statements:
                for kind, s_attr, t_attr in _KINDS:
                    for sacc in getattr(src, s_attr):
                        for tacc in getattr(tgt, t_attr):
                            if sacc.array != tacc.array:
                                continue
                            dep = _build_one(src, tgt, kind, sacc, tacc)
                            if dep is not None:
                                out.append(dep)
        obs.add("analysis.deps.polyhedra", sum(1 for d in out if d.exists()))
        obs.add("analysis.deps.branches", sum(len(d.branches) for d in out))
    return out


# ---------------------------------------------------------------------------
# proposed schedules and legality (A009 / A010)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulePiece:
    """One guarded piece of a proposed per-statement schedule.

    ``entries`` is a 2d+1-style vector over ints, loop dims (``"k"``,
    ``"-k"`` for reversed loops) and auxiliary block dims; ``divs`` declares
    each auxiliary dim as an integer floor division ``aux = dim // modulus``
    (modulus must be a concrete int — tiles of symbolic size are not affine);
    ``guards`` restrict where the piece applies (e.g. the "past columns"
    phase of a blocked factorization), over dims, aux dims and parameters.
    """

    entries: tuple
    guards: tuple[Constraint, ...] = ()
    divs: tuple[tuple[str, str, int], ...] = ()  # (aux, dim, modulus)


@dataclass(frozen=True)
class ScheduleViolation:
    """A concrete dependence instance pair the proposed order reverses."""

    dep: DepPolyhedron
    src_point: tuple[int, ...]
    tgt_point: tuple[int, ...]


def _parse_flat_entries(
    entries: Sequence,
) -> tuple[tuple, tuple[tuple[str, str, int], ...]]:
    """Expand ``"d/B"`` block entries of a flat vector into div aux dims."""
    out: list = []
    divs: dict[tuple[str, int], str] = {}
    for e in entries:
        if isinstance(e, str) and "/" in e:
            name, _, mod = e.partition("/")
            name = name.strip()
            try:
                b = int(mod)
            except ValueError:
                raise ValueError(f"bad block schedule entry {e!r}") from None
            if b <= 0:
                raise ValueError(f"bad block modulus in {e!r}")
            aux = divs.setdefault((name, b), f"{name}_q{b}")
            out.append(aux)
        else:
            out.append(e)
    return tuple(out), tuple(
        (aux, name, b) for (name, b), aux in divs.items()
    )


def _normalize_spec(
    schedule: Mapping[str, object],
) -> dict[str, tuple[SchedulePiece, ...]]:
    spec: dict[str, tuple[SchedulePiece, ...]] = {}
    for name, val in schedule.items():
        if isinstance(val, SchedulePiece):
            spec[name] = (val,)
        elif isinstance(val, (tuple, list)) and val and all(
            isinstance(p, SchedulePiece) for p in val
        ):
            spec[name] = tuple(val)
        elif isinstance(val, (tuple, list)):
            entries, divs = _parse_flat_entries(val)
            spec[name] = (SchedulePiece(entries=entries, divs=divs),)
        else:
            raise TypeError(f"bad schedule for {name!r}: {val!r}")
    return spec


def _piece_parts(
    stmt: Statement, piece: SchedulePiece, suffix: str
) -> tuple[list[LinExpr], list[Constraint], tuple[str, ...]]:
    """Renamed (entries, constraints, aux dims) of one schedule piece."""
    ren = {d: f"{d}{suffix}" for d in stmt.dims}
    ren.update({aux: f"{aux}{suffix}" for aux, _, _ in piece.divs})
    entries = _entries_to_exprs(piece.entries, ren)
    cons: list[Constraint] = [g.rename(ren) for g in piece.guards]
    for aux, dim, b in piece.divs:
        q = var(ren[aux])
        d = var(ren.get(dim, dim))
        cons.append(Constraint(d - q * b, GE))  # q*b <= dim
        cons.append(Constraint(q * b + (b - 1) - d, GE))  # dim <= q*b + b-1
    aux_dims = tuple(ren[aux] for aux, _, _ in piece.divs)
    return entries, cons, aux_dims


def check_schedule(
    program: Program,
    schedule: Mapping[str, object],
    params: Mapping[str, int] | None = None,
    *,
    deps: Iterable[DepPolyhedron] | None = None,
) -> list[Diagnostic]:
    """Legality of a proposed schedule against the program's dependences.

    ``schedule`` maps statement names to flat 2d+1 vectors (ints, dims,
    ``"-dim"``, ``"dim/B"`` block entries) or to :class:`SchedulePiece`
    sequences; statements absent from the mapping keep their original
    schedule.  For every dependence the violation set — relation ∧ "target
    scheduled no later than source" — is refuted symbolically where FM can,
    searched for an integer witness at ``params`` (default
    :data:`PROBE_PARAM` per parameter) where it cannot: a witness is an
    A009 error naming the violated instance pair, a witnessless but
    rationally feasible set an A010 warning.
    """
    spec = _normalize_spec(schedule)
    if params is None:
        params = {p: PROBE_PARAM for p in program.params}
    if deps is None:
        deps = build_dependences(program)
    stmts = {s.name: s for s in program.statements}
    diags: list[Diagnostic] = []
    with obs.span("analysis.deps.legality", program=program.name):
        for dep in deps:
            if not dep.branches:
                continue
            src, tgt = stmts[dep.src], stmts[dep.tgt]
            src_pieces = spec.get(
                dep.src, (SchedulePiece(entries=tuple(src.schedule)),)
            )
            tgt_pieces = spec.get(
                dep.tgt, (SchedulePiece(entries=tuple(tgt.schedule)),)
            )
            witness: ScheduleViolation | None = None
            undecided = False
            for sp in src_pieces:
                for tp in tgt_pieces:
                    theta_s, cons_s, aux_s = _piece_parts(src, sp, _SRC)
                    theta_t, cons_t, aux_t = _piece_parts(tgt, tp, _TGT)
                    n = max(len(theta_s), len(theta_t))
                    theta_s += [aff(0)] * (n - len(theta_s))
                    theta_t += [aff(0)] * (n - len(theta_t))
                    extra = cons_s + cons_t
                    for vb in lex_le_branches(theta_t, theta_s):
                        for br in dep.branches:
                            vset = ISet(
                                br.dims + aux_s + aux_t,
                                list(br.constraints) + extra + vb,
                            )
                            if vset.definitely_empty():
                                continue
                            pt = vset.sample(params)
                            if pt is None:
                                undecided = True
                                continue
                            ns, nt = len(dep.src_dims), len(dep.tgt_dims)
                            witness = ScheduleViolation(
                                dep, pt[:ns], pt[ns : ns + nt]
                            )
                            break
                        if witness:
                            break
                    if witness:
                        break
                if witness:
                    break
            if witness:
                obs.add("analysis.deps.violations")
                env = dict(params)
                env.update(zip(dep.src_dims, witness.src_point))
                arr, idx = dep.src_access.eval(env)
                cell = f"{arr}[{', '.join(str(i) for i in idx)}]" if idx else arr
                diags.append(
                    Diagnostic(
                        "A009",
                        "error",
                        f"illegal schedule: {dep.kind} dependence"
                        f" {_inst_str(dep.src, dep.src_dims, witness.src_point)}"
                        f" -> {_inst_str(dep.tgt, dep.tgt_dims, witness.tgt_point)}"
                        f" on {cell} is reversed (the proposed schedule runs"
                        " the target no later than the source)",
                        stmt=dep.tgt,
                        span=dep.tgt_access.span or tgt.span,
                        hint="every dependence target must be scheduled"
                        " strictly after its source; re-order the offending"
                        " levels or tile along a non-carrying loop",
                    )
                )
            elif undecided:
                obs.add("analysis.deps.undecided")
                diags.append(
                    Diagnostic(
                        "A010",
                        "warning",
                        f"schedule legality undecided for {dep.kind}"
                        f" dependence {dep.src} -> {dep.tgt} on"
                        f" {dep.array}: the violation set is rationally"
                        " feasible but holds no integer point at the probe"
                        f" parameters {dict(params)}",
                        stmt=dep.tgt,
                        span=dep.tgt_access.span or tgt.span,
                        hint="Fourier-Motzkin cannot certify integer"
                        " emptiness here (e.g. divisibility gaps); check"
                        " larger parameters or refine the schedule",
                    )
                )
    return diags


def check_order(
    program: Program,
    order: Sequence[tuple[str, Sequence[int]]],
    params: Mapping[str, int] | None = None,
    *,
    deps: Iterable[DepPolyhedron] | None = None,
    limit: int | None = None,
) -> list[ScheduleViolation]:
    """Legality of an explicit instance order (a pebble/tiled schedule).

    ``order`` lists ``(statement, point)`` instances in execution order —
    exactly the compute-node lists :mod:`repro.pebble.schedules` produces.
    Every dependence pair enumerated at ``params`` must run source-first;
    returns the violated pairs (empty means legal at these parameters).
    ``limit`` stops the scan once that many violations are collected —
    pass 1 when only existence matters.
    """
    if params is None:
        params = {p: PROBE_PARAM for p in program.params}
    if deps is None:
        deps = build_dependences(program)
    pos = {
        (name, tuple(point)): i for i, (name, point) in enumerate(order)
    }
    out: list[ScheduleViolation] = []
    for dep in deps:
        ns = len(dep.src_dims)
        for br in dep.branches:
            for pt in br.points(params):
                sp, tp = pt[:ns], pt[ns:]
                i = pos.get((dep.src, sp))
                j = pos.get((dep.tgt, tp))
                if i is None or j is None:
                    continue
                if i >= j:
                    out.append(ScheduleViolation(dep, sp, tp))
                    if limit is not None and len(out) >= limit:
                        return out
    return out


def check_tiled_legality(
    alg, b: int, params: Mapping[str, int] | None = None
) -> tuple[list[Diagnostic], str]:
    """A009/A010 legality of a tiled algorithm at block size ``b``.

    Returns ``(diagnostics, mode)``.  Algorithms exposing a
    ``schedule_spec`` hook are checked *symbolically* through
    :func:`check_schedule` (``mode == "symbolic"``): the proof covers all
    parameter values, not one run.  Algorithms without a closed-form
    schedule fall back to replaying one traced execution through
    :func:`check_order` (``mode == "traced"``), turning each violated
    pair into a concrete A009.
    """
    from ..kernels.registry import KERNELS

    program = KERNELS[alg.base].program
    if alg.schedule_spec is not None:
        spec = alg.schedule_spec(b)
        return check_schedule(program, spec, params), "symbolic"
    if params is None:
        # probe values can break runner preconditions like M > N; the
        # base kernel's default point is known-valid and still small
        params = dict(KERNELS[alg.base].default_params) or {
            p: PROBE_PARAM for p in program.params
        }
    trace = alg.run_traced({**params, "B": b})
    deps = [d for d in build_dependences(program) if d.branches]
    diags: list[Diagnostic] = []
    for v in check_order(program, trace.schedule, params, deps=deps):
        diags.append(
            Diagnostic(
                "A009",
                "error",
                f"traced {alg.name} order at B={b} reverses the"
                f" {v.dep.kind} dependence"
                f" {_inst_str(v.dep.src, v.dep.src_dims, v.src_point)} ->"
                f" {_inst_str(v.dep.tgt, v.dep.tgt_dims, v.tgt_point)}"
                f" on {v.dep.array}",
                stmt=v.dep.tgt,
            )
        )
    return diags, "traced"


def _inst_str(name: str, dims: Sequence[str], point: Sequence[int]) -> str:
    if not dims:
        return f"{name}()"
    inner = ", ".join(f"{d}={v}" for d, v in zip(dims, point))
    return f"{name}({inner})"


# ---------------------------------------------------------------------------
# the analyzer pass (A009-A012)
# ---------------------------------------------------------------------------


def pass_deps(ctx) -> list[Diagnostic]:
    """Dependence summary, legality of a proposed schedule, differentials.

    * A011 (info): one summary per program — how many flow/anti/output
      polyhedra over how many ordered statement pairs, and which loops
      carry a self-dependence (symbolic distance signs).
    * A009/A010: when the context proposes a schedule
      (``ctx.proposed_schedule``), the legality verdict of
      :func:`check_schedule`.
    * A012 (error): differential self-check — every branch Fourier–Motzkin
      proved empty is re-checked by enumeration at the check parameters,
      and every bounds-violation set FM proves empty must hold no
      enumerated witness.  An A012 cannot be fixed in the analyzed
      program: it means the symbolic and enumerative deciders disagree.
    """
    prog = ctx.program
    diags: list[Diagnostic] = []
    deps = build_dependences(prog)

    # differential 1: FM emptiness proofs vs enumeration on dep branches
    for dep in deps:
        for br in dep.pruned:
            if br.sample(ctx.params) is not None:
                diags.append(
                    Diagnostic(
                        "A012",
                        "error",
                        "differential self-check failed: Fourier-Motzkin"
                        f" proved a {dep.kind} dependence branch"
                        f" {dep.src} -> {dep.tgt} on {dep.array} empty,"
                        f" but enumeration at {dict(ctx.params)} found a"
                        " point",
                        stmt=dep.tgt,
                        hint="this is an analyzer bug, not a program bug;"
                        " report it with the program source",
                    )
                )

    # differential 2: symbolic vs enumerative bounds facts
    for st in prog.statements:
        dom = st.domain()
        for acc in st.reads + st.writes:
            extents = ctx.shapes.get(acc.array)
            for d, idx in enumerate(acc.indices):
                checks = [(idx * -1) - 1]
                if extents is not None and d < len(extents):
                    checks.append(idx - extents[d])
                for vexpr in checks:
                    viol = dom.with_constraints([Constraint(vexpr, GE)])
                    if not viol.definitely_empty():
                        continue
                    if viol.sample(ctx.params) is not None:
                        diags.append(
                            Diagnostic(
                                "A012",
                                "error",
                                "differential self-check failed: the bounds"
                                f" violation set of {acc!r} index #{d + 1}"
                                f" in {st.name} is symbolically empty but"
                                f" holds a point at {dict(ctx.params)}",
                                stmt=st.name,
                                span=acc.span or st.span,
                                hint="this is an analyzer bug, not a"
                                " program bug; report it with the program"
                                " source",
                            )
                        )

    # proposed-schedule legality (A009 / A010)
    proposed = getattr(ctx, "proposed_schedule", None)
    if proposed:
        diags.extend(
            check_schedule(prog, proposed, ctx.params, deps=deps)
        )

    # A011: the dependence summary
    live = [d for d in deps if d.exists()]
    if prog.statements:
        span = prog.statements[0].span
        if not live:
            diags.append(
                Diagnostic(
                    "A011",
                    "info",
                    "dependence summary: no dependences — every statement"
                    " instance is independent (fully parallel)",
                    span=span,
                )
            )
        else:
            kinds = {k: 0 for k, _, _ in _KINDS}
            for d in live:
                kinds[d.kind] += 1
            pairs = len({(d.src, d.tgt) for d in live})
            carried: set[str] = set()
            for d in live:
                if d.src != d.tgt:
                    continue
                signs = d.distance_signs(stop_at_carry=True)
                for dim, sign in zip(d.src_dims, signs):
                    if sign != "0":
                        carried.add(dim)
                        break
            diags.append(
                Diagnostic(
                    "A011",
                    "info",
                    f"dependence summary: {kinds['flow']} flow,"
                    f" {kinds['anti']} anti, {kinds['output']} output"
                    f" polyhedra over {pairs} ordered statement pair(s);"
                    " loop-carried by: "
                    + (", ".join(sorted(carried)) or "(none)"),
                    span=span,
                )
            )
    return diags
