"""Comment directives: in-source analyzer configuration and expectations.

Programs in the figure dialect can carry ``//`` comment directives that
configure the analyzer, so a lint target is self-contained:

``// shape: A=N; B=M,N``
    declared array extents for the bounds pass (arrays separated by
    ``;``, per-array extents by ``,``; extents are affine expressions
    over the parameters);
``// dominant: SU``
    the statement the hourglass pass should target (otherwise it
    searches reading statements in decreasing instance count);
``// schedule: SU=(k,2,j,0); SR=(k,1,j,0)``
    a proposed schedule for the A009/A010 legality pass — per-statement
    flat 2d+1 vectors whose entries are ints, loop dims, ``-dim`` for a
    reversed loop, or ``dim/B`` for the block index ``floor(dim/B)``;
    statements not listed keep their original schedule;
``// expect: A004 error @6:7``
    an expected diagnostic (code, severity, 1-based line:col) — inert to
    the analyzer itself, asserted by the corpus runner in
    ``tests/test_analysis.py``.

Both the ``iolb lint <file>`` CLI path and the test corpus runner parse
these through :func:`parse_directives`, so a corpus file means the same
thing in CI, under pytest and on the command line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Directives", "parse_directives"]

_EXPECT = re.compile(
    r"//\s*expect:\s*(A\d{3})\s+(error|warning|info)\s+@(\d+):(\d+)"
)
_SHAPE = re.compile(r"//\s*shape:\s*(.+)")
_DOMINANT = re.compile(r"//\s*dominant:\s*(\w+)")
_SCHEDULE = re.compile(r"//\s*schedule:\s*(.+)")


@dataclass(frozen=True)
class Directives:
    """Parsed comment directives of one source file."""

    #: (code, severity, line, col) expectations, in file order
    expects: tuple[tuple[str, str, int, int], ...] = ()
    #: array name -> extent expression strings, or None when undeclared
    shapes: dict[str, tuple[str, ...]] | None = None
    #: hourglass target statement, or None for automatic selection
    dominant: str | None = None
    #: proposed schedule vectors for the legality pass, or None
    schedule: dict[str, tuple] | None = None


def parse_directives(src: str) -> Directives:
    """Extract ``// expect / shape / dominant`` directives from source."""
    expects = tuple(
        (m.group(1), m.group(2), int(m.group(3)), int(m.group(4)))
        for m in _EXPECT.finditer(src)
    )
    shapes = None
    m = _SHAPE.search(src)
    if m:
        shapes = {}
        for part in m.group(1).split(";"):
            name, _, extents = part.partition("=")
            if not name.strip() or not extents.strip():
                raise ValueError(f"malformed // shape: directive: {part!r}")
            shapes[name.strip()] = tuple(
                e.strip() for e in extents.split(",")
            )
    schedule = None
    m = _SCHEDULE.search(src)
    if m:
        schedule = {}
        for part in m.group(1).split(";"):
            part = part.strip()
            if not part:
                continue
            name, _, vec = part.partition("=")
            name, vec = name.strip(), vec.strip()
            if not name or not (vec.startswith("(") and vec.endswith(")")):
                raise ValueError(
                    f"malformed // schedule: directive: {part!r}"
                )
            entries: list = []
            for tok in vec[1:-1].split(","):
                tok = tok.strip()
                if not tok:
                    raise ValueError(
                        f"malformed // schedule: directive: {part!r}"
                    )
                try:
                    entries.append(int(tok))
                except ValueError:
                    entries.append(tok)
            schedule[name] = tuple(entries)
    m = _DOMINANT.search(src)
    return Directives(
        expects=expects,
        shapes=shapes,
        dominant=m.group(1) if m else None,
        schedule=schedule,
    )
