"""``repro.analysis`` — polyhedral static analyzer with span diagnostics.

The analyzer reuses the repo's polyhedral machinery (Fourier–Motzkin
projection and emptiness, affine index maps, the sequential 2d+1 schedule)
as its decision engine and turns it towards *program health* instead of
bound derivation: affine-ness, well-formedness, initialization, bounds,
dead stores / dead code, explicit parameter-domain assumptions, and
hourglass-applicability ("will the tightened bound fire, and why?").

Entry points:

* :func:`check_program` — analyze a lowered :class:`~repro.ir.Program`
  (optionally with its front-end AST for exact spans and declared shapes
  for symbolic bounds checking); returns an :class:`AnalysisReport`.
* :func:`check_source` — parse + lower + analyze a figure-dialect source
  string; never raises on bad input (syntax errors become diagnostics).
* ``compile_source(..., strict=True)`` in :mod:`repro.frontend` calls
  :func:`check_program` and raises :class:`AnalysisError` on errors.
* the ``iolb lint`` subcommand surfaces all of this on the command line.

Every pass runs under an :mod:`repro.obs` span (``analysis.pass.<name>``)
with per-pass diagnostic counters, so ``iolb lint --profile`` and the
``lint.kernels`` benchmark can attribute analyzer time.
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from ..ir import Program
from ..polyhedral import LinExpr, aff
from .diagnostics import (
    CODES,
    LINT_SCHEMA,
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    check_lint_schema,
)
from .deps import (
    DepPolyhedron,
    SchedulePiece,
    build_dependences,
    check_order,
    check_schedule,
    check_tiled_legality,
)
from .directives import Directives, parse_directives
from .passes import (
    PROGRAM_PASSES,
    AnalysisContext,
    analyze_ast,
)

__all__ = [
    "LINT_SCHEMA",
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "AnalysisReport",
    "AnalysisError",
    "AnalysisContext",
    "check_program",
    "check_source",
    "check_lint_schema",
    "analyze_ast",
    "Directives",
    "parse_directives",
    "DepPolyhedron",
    "SchedulePiece",
    "build_dependences",
    "check_schedule",
    "check_order",
    "check_tiled_legality",
]

#: default per-parameter check value (same small-parameter philosophy as
#: the CDAG cross-validation: exact at a concrete point)
DEFAULT_PARAM = 6


class AnalysisError(ValueError):
    """Raised by ``compile_source(strict=True)`` when the analyzer finds
    errors; carries the full :class:`AnalysisReport` as ``.report``."""

    def __init__(self, report: AnalysisReport):
        errs = report.errors()
        head = f"{len(errs)} error(s) in {report.program}"
        detail = "; ".join(repr(d) for d in errs[:3])
        if len(errs) > 3:
            detail += "; …"
        super().__init__(f"{head}: {detail}")
        self.report = report


def _parse_extent(x, params: tuple[str, ...]) -> LinExpr:
    """Coerce one declared array extent (int, str or LinExpr) to affine."""
    if isinstance(x, LinExpr):
        return x
    if isinstance(x, int):
        return aff(x)
    if isinstance(x, str):
        from ..frontend.lexer import tokenize
        from ..frontend.lower import LowerError, _to_affine
        from ..frontend.parser import ParseError, _Parser

        try:
            e = _Parser(tokenize(x)).parse_additive()
            return _to_affine(e, set(), set(params))
        except (ParseError, LowerError) as exc:
            raise ValueError(f"bad shape extent {x!r}: {exc}") from exc
    raise ValueError(f"bad shape extent {x!r} (want int, str or LinExpr)")


def _resolve_shapes(
    shapes, params: tuple[str, ...]
) -> dict[str, tuple[LinExpr, ...]]:
    out: dict[str, tuple[LinExpr, ...]] = {}
    for arr, extents in (shapes or {}).items():
        out[arr] = tuple(_parse_extent(x, params) for x in extents)
    return out


def check_program(
    program: Program,
    params: Mapping[str, int] | None = None,
    *,
    shapes: Mapping[str, tuple] | None = None,
    inputs=(),
    live_out=None,
    ast=None,
    dominant: str | None = None,
    schedule: Mapping[str, object] | None = None,
) -> AnalysisReport:
    """Run every analyzer pass over ``program``; never raises.

    ``params`` are the concrete check parameters for the dynamic passes
    (default: every program parameter set to ``DEFAULT_PARAM``); ``shapes``
    declares array extents as affine expressions (str/int/LinExpr per
    dimension) for the bounds pass; ``inputs`` names arrays initialized
    externally (exempt from uninitialized-read checking); ``live_out``
    names arrays whose final values escape (default: the program's declared
    outputs, else every non-workspace array); ``ast`` is the front-end
    :class:`~repro.frontend.astnodes.Block` for the syntactic pass;
    ``dominant`` targets the hourglass pass at a specific statement;
    ``schedule`` proposes a schedule (statement name -> flat 2d+1 vector or
    :class:`~repro.analysis.deps.SchedulePiece` sequence) for the
    A009/A010 legality pass.
    """
    if params is None:
        params = {p: DEFAULT_PARAM for p in program.params}
    params = dict(params)
    report = AnalysisReport(program=program.name, params=params)

    def run(pass_name: str, fn) -> None:
        with obs.span(f"analysis.pass.{pass_name}", program=program.name):
            try:
                diags = fn()
            except Exception as exc:  # noqa: BLE001 - must not crash
                diags = [
                    Diagnostic(
                        "A002",
                        "error",
                        f"internal: analysis pass {pass_name!r} failed:"
                        f" {type(exc).__name__}: {exc}",
                        hint="this usually means an earlier error left the"
                        " program in a state the pass cannot process",
                    )
                ]
            report.pass_counts[pass_name] = len(diags)
            report.diagnostics.extend(diags)
            obs.add(f"analysis.pass.{pass_name}.diagnostics", len(diags))

    with obs.span("analysis.check", program=program.name):
        if ast is not None:
            run("ast", lambda: analyze_ast(ast))
        ctx = AnalysisContext(
            program=program,
            params=params,
            shapes=_resolve_shapes(shapes, program.params),
            inputs=frozenset(inputs),
            live_out=frozenset(),
            dominant=dominant,
            proposed_schedule=schedule,
        )
        if live_out is not None:
            ctx.live_out = frozenset(live_out)
        elif program.outputs:
            ctx.live_out = frozenset(program.outputs)
        else:
            ctx.live_out = frozenset(
                a.name for a in program.arrays
            ) - ctx.workspace
        structural_errors: bool | None = None
        for pass_name, fn, needs_clean in PROGRAM_PASSES:
            if needs_clean:
                # gate the exact passes on the *structural* passes only —
                # errors the exact passes themselves emit (A003/A004) must
                # not suppress their siblings
                if structural_errors is None:
                    structural_errors = bool(report.errors())
                if structural_errors:
                    continue
            run(pass_name, lambda fn=fn: fn(ctx))
        obs.add("analysis.programs_checked", 1)
        obs.add("analysis.diagnostics", len(report.diagnostics))
    return report


def check_source(
    src: str,
    name: str = "lint",
    params: Mapping[str, int] | None = None,
    *,
    shapes: Mapping[str, tuple] | None = None,
    inputs=(),
    live_out=None,
    dominant: str | None = None,
    schedule: Mapping[str, object] | None = None,
) -> tuple[AnalysisReport, Program | None]:
    """Parse, lower and analyze a figure-dialect source string.

    Returns ``(report, program)``; ``program`` is ``None`` when parsing,
    the syntactic pass, or lowering failed (the failure is in the report
    as a diagnostic — this function never raises on bad input).
    """
    from ..frontend.lower import LowerError, lower_program
    from ..frontend.parser import ParseError, parse

    def failed(pass_name: str, diags) -> tuple[AnalysisReport, None]:
        rep = AnalysisReport(program=name, params=dict(params or {}))
        rep.diagnostics = list(diags)
        rep.pass_counts[pass_name] = len(diags)
        obs.add("analysis.programs_checked", 1)
        obs.add("analysis.diagnostics", len(rep.diagnostics))
        return rep, None

    try:
        tree = parse(src)
    except ParseError as exc:
        return failed(
            "parse",
            [
                Diagnostic(
                    "A002",
                    "error",
                    f"parse error: {exc}",
                    span=exc.span,
                )
            ],
        )
    ast_diags = analyze_ast(tree)
    if any(d.severity == "error" for d in ast_diags):
        return failed("ast", ast_diags)
    try:
        prog = lower_program(tree, name=name)
    except LowerError as exc:
        msg = str(exc)
        code = (
            "A001" if "non-affine" in msg or "non-integer" in msg else "A002"
        )
        return failed(
            "lower", ast_diags + [Diagnostic(code, "error", msg, span=exc.span)]
        )
    report = check_program(
        prog,
        params,
        shapes=shapes,
        inputs=inputs,
        live_out=live_out,
        dominant=dominant,
        schedule=schedule,
    )
    if ast_diags:
        report.diagnostics = ast_diags + report.diagnostics
        report.pass_counts = {"ast": len(ast_diags), **report.pass_counts}
    return report, prog
