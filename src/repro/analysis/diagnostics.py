"""Diagnostics: the analyzer's structured findings and their renderings.

A :class:`Diagnostic` is one finding — a stable code (``A001``…), a severity
(``error`` / ``warning`` / ``info``), a human message, the statement it
concerns, the source :class:`~repro.ir.Span` it points at (when the program
came through the front-end) and an optional fix-it hint.  A full analyzer
run returns an :class:`AnalysisReport`, which renders either as annotated,
optionally colorized text (``render()``) or as the versioned ``iolb-lint/1``
JSON document (``to_dict()``, validated by :func:`check_lint_schema`).

The catalogue of codes lives in :data:`CODES`; ``docs/ANALYSIS.md`` documents
each with a minimal trigger example, and the corpus under
``tests/lint_corpus/`` pins one program per code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..ir.span import Span

__all__ = [
    "LINT_SCHEMA",
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "AnalysisReport",
    "check_lint_schema",
]

#: schema tag of the JSON lint report
LINT_SCHEMA = "iolb-lint/1"

#: severity names, most severe first (exit codes: error=2, warning=1)
SEVERITIES = ("error", "warning", "info")

#: the diagnostic catalogue: code -> (default severity, title)
CODES: dict[str, tuple[str, str]] = {
    "A001": ("error", "non-affine construct"),
    "A002": ("error", "malformed program"),
    "A003": ("error", "read before any write (uninitialized)"),
    "A004": ("error", "access out of declared bounds"),
    "A005": ("warning", "value overwritten before any read"),
    "A006": ("warning", "dead code (values never observed)"),
    "A007": ("info", "parameter-domain assumption"),
    "A008": ("info", "hourglass applicability"),
    "A009": ("error", "illegal schedule (dependence reversed)"),
    "A010": ("warning", "schedule legality undecided"),
    "A011": ("info", "dependence summary"),
    "A012": ("error", "differential self-check mismatch (analyzer bug)"),
}

_ANSI = {
    "error": "\x1b[31;1m",
    "warning": "\x1b[33;1m",
    "info": "\x1b[36m",
    "bold": "\x1b[1m",
    "dim": "\x1b[2m",
    "off": "\x1b[0m",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: str
    message: str
    stmt: str = ""
    span: Span | None = None
    hint: str = ""

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "stmt": self.stmt,
            "span": self.span.to_dict() if self.span else None,
            "hint": self.hint,
        }

    def __repr__(self) -> str:
        at = f" at {self.span!r}" if self.span else ""
        st = f" [{self.stmt}]" if self.stmt else ""
        return f"{self.severity}[{self.code}]{st}{at}: {self.message}"


@dataclass
class AnalysisReport:
    """All findings of one analyzer run over one program."""

    program: str
    params: dict[str, int] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-pass diagnostic counts, in execution order
    pass_counts: dict[str, int] = field(default_factory=dict)

    # -- selection ---------------------------------------------------------
    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    def warnings(self) -> list[Diagnostic]:
        return self.by_severity("warning")

    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors()

    def clean(self) -> bool:
        """Neither errors nor warnings."""
        return not self.errors() and not self.warnings()

    def exit_code(self) -> int:
        """Severity-gated process exit code: 2 errors, 1 warnings, 0 clean."""
        if self.errors():
            return 2
        if self.warnings():
            return 1
        return 0

    def summary_counts(self) -> dict[str, int]:
        return {sev: len(self.by_severity(sev)) for sev in SEVERITIES}

    # -- output ------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "program": self.program,
            "params": dict(self.params),
            "summary": self.summary_counts(),
            "ok": self.ok(),
            "passes": dict(self.pass_counts),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self, source: str | None = None, color: bool = False) -> str:
        """Human-readable report, one block per diagnostic.

        With ``source`` given, each spanned diagnostic is followed by the
        offending source line and a caret marker under the span.
        """

        def c(key: str, text: str) -> str:
            if not color:
                return text
            return f"{_ANSI[key]}{text}{_ANSI['off']}"

        lines: list[str] = []
        src_lines = source.splitlines() if source else []
        for d in self.diagnostics:
            loc = f"{self.program}:"
            if d.span:
                loc += f"{d.span.line}:{d.span.col}:"
            head = (
                f"{loc} {c(d.severity, d.severity)}"
                f"[{c('bold', d.code)}]: {d.message}"
            )
            if d.stmt:
                head += c("dim", f" [{d.stmt}]")
            lines.append(head)
            if d.span and 1 <= d.span.line <= len(src_lines):
                text = src_lines[d.span.line - 1]
                gutter = f"{d.span.line:5d} | "
                lines.append(gutter + text)
                width = (
                    max(1, d.span.end_col - d.span.col)
                    if d.span.end_line == d.span.line
                    else max(1, len(text) - d.span.col + 1)
                )
                marker = " " * (d.span.col - 1) + "^" + "~" * (width - 1)
                lines.append(" " * (len(gutter) - 2) + "| " + c(d.severity, marker))
            if d.hint:
                lines.append(f"        hint: {d.hint}")
        counts = self.summary_counts()
        tally = ", ".join(
            f"{counts[sev]} {sev}{'s' if counts[sev] != 1 else ''}"
            for sev in SEVERITIES
        )
        verdict = "clean" if self.clean() else ("ok" if self.ok() else "FAILED")
        lines.append(f"{self.program}: {tally} => {verdict}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------

_SPAN_KEYS = {"line", "col", "end_line", "end_col"}


def _check_report_dict(doc: Mapping, where: str) -> None:
    for key in ("program", "params", "summary", "ok", "passes", "diagnostics"):
        if key not in doc:
            raise ValueError(f"{where}: missing key {key!r}")
    if not isinstance(doc["program"], str):
        raise ValueError(f"{where}: program must be a string")
    for pname, pval in doc["params"].items():
        if not isinstance(pname, str) or not isinstance(pval, int):
            raise ValueError(f"{where}: params must map str -> int")
    summary = doc["summary"]
    if set(summary) != set(SEVERITIES):
        raise ValueError(f"{where}: summary must have keys {SEVERITIES}")
    if not isinstance(doc["ok"], bool):
        raise ValueError(f"{where}: ok must be a bool")
    counted = {sev: 0 for sev in SEVERITIES}
    for i, d in enumerate(doc["diagnostics"]):
        dwhere = f"{where}: diagnostics[{i}]"
        for key in ("code", "severity", "message", "stmt", "span", "hint"):
            if key not in d:
                raise ValueError(f"{dwhere}: missing key {key!r}")
        if d["code"] not in CODES:
            raise ValueError(f"{dwhere}: unknown code {d['code']!r}")
        if d["severity"] not in SEVERITIES:
            raise ValueError(f"{dwhere}: unknown severity {d['severity']!r}")
        counted[d["severity"]] += 1
        span = d["span"]
        if span is not None and (
            set(span) != _SPAN_KEYS
            or not all(isinstance(span[k], int) for k in _SPAN_KEYS)
        ):
            raise ValueError(f"{dwhere}: malformed span {span!r}")
    if counted != dict(summary):
        raise ValueError(
            f"{where}: summary {dict(summary)} does not match the"
            f" diagnostics list tally {counted}"
        )
    if doc["ok"] != (counted["error"] == 0):
        raise ValueError(f"{where}: ok flag inconsistent with error count")


def check_lint_schema(doc: Mapping) -> None:
    """Validate an ``iolb-lint/1`` document; raises ``ValueError`` on drift.

    Accepts both the single-program report (``iolb lint mgs --json``) and
    the multi-report wrapper emitted by ``iolb lint all --json`` (a
    ``reports`` mapping of program name to report body).
    """
    if doc.get("schema") != LINT_SCHEMA:
        raise ValueError(f"not an {LINT_SCHEMA} document: {doc.get('schema')!r}")
    if "reports" in doc:
        reports = doc["reports"]
        if not isinstance(reports, Mapping) or not reports:
            raise ValueError("reports must be a non-empty mapping")
        for name, sub in reports.items():
            _check_report_dict(sub, f"reports[{name}]")
        return
    _check_report_dict(doc, "report")
