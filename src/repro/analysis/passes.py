"""The analyzer's passes, from syntactic probing to polyhedral decision.

Each pass is a pure function from an :class:`AnalysisContext` (program +
check parameters + optional declared shapes) to a list of
:class:`~repro.analysis.Diagnostic` objects:

``analyze_ast``    A001/A002 — affine-ness of subscripts, loop bounds and
                   guards, rank consistency, duplicate labels, loop
                   step/comparison coherence (front-end AST, exact spans)
``pass_wellformed``A002 — IR structural validation (arity vs rank, schedule
                   shape, undeclared arrays) via ``validate_program``
``pass_assumptions``A007/A006 — Fourier–Motzkin-project every statement
                   domain onto the parameters: the surviving constraints are
                   the explicit parameter-domain assumptions (``N >= 2``);
                   an infeasible projection proves the domain empty for all
                   parameter values (dead code)
``pass_dataflow``  A003/A005/A006 — replay the declared accesses in
                   2d+1-schedule order at the check parameters: reads of
                   never-written local cells (uninitialized), writes
                   overwritten before any read (reorder hazard / dead
                   store), statements none of whose values are ever
                   observed (dead code)
``pass_bounds``    A004 — for every access index build the polyhedral
                   violation set (domain ∧ index < 0, or ∧ index >= extent
                   when shapes are declared) and search it for an integer
                   witness at the check parameters
``pass_hourglass`` A008 — run the paper's hourglass detection on the
                   dominant statement and report *why* the tightened bound
                   will or won't apply
``pass_deps``      A009-A012 — symbolic dependence polyhedra (see
                   :mod:`repro.analysis.deps`): the dependence summary,
                   schedule legality of a proposed schedule, and the
                   symbolic-vs-enumerative differential self-check

The dynamic passes are exact at the chosen parameter point (the same
small-parameter philosophy the CDAG cross-validation uses); the projection
passes and the dependence pass are symbolic in the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Mapping, Sequence

from ..ir import Program, sequential_schedule, validate_program
from ..polyhedral import Constraint, LinExpr
from .deps import pass_deps
from .diagnostics import Diagnostic

__all__ = [
    "AnalysisContext",
    "analyze_ast",
    "pass_wellformed",
    "pass_assumptions",
    "pass_dataflow",
    "pass_bounds",
    "pass_hourglass",
    "pass_deps",
    "PROGRAM_PASSES",
]


@dataclass
class AnalysisContext:
    """Everything a program-level pass needs."""

    program: Program
    params: dict[str, int]
    #: declared array extents (affine in the params), or None per array
    shapes: dict[str, tuple[LinExpr, ...]] = field(default_factory=dict)
    #: arrays assumed initialized externally (exempt from A003)
    inputs: frozenset[str] = frozenset()
    #: arrays whose final values escape the program (exempt from A005/A006)
    live_out: frozenset[str] = frozenset()
    #: statement the hourglass pass should target (default: most instances)
    dominant: str | None = None
    #: proposed schedule for the legality pass (statement name -> flat 2d+1
    #: vector or SchedulePiece sequence, see repro.analysis.deps), or None
    proposed_schedule: Mapping[str, object] | None = None

    @property
    def workspace(self) -> frozenset[str]:
        """Arrays local to the program: written scalars not declared inputs.

        The front-end dialect has no declarations, so any subscripted array
        could be an input; only bare written scalars are provably local.
        Callers with declarations can shrink ``inputs``/``live_out`` instead.
        """
        written = {a.array for s in self.program.statements for a in s.writes}
        zero_dim = {a.name for a in self.program.arrays if a.ndim == 0}
        return frozenset((written & zero_dim) - self.inputs)


def _inst(stmt, point: Sequence[int]) -> str:
    """``S(k=0, i=2)`` rendering of a statement instance."""
    if not stmt.dims:
        return f"{stmt.name}()"
    inner = ", ".join(f"{d}={v}" for d, v in zip(stmt.dims, point))
    return f"{stmt.name}({inner})"


def _fmt_frac(v: Fraction) -> str:
    return str(int(v)) if v.denominator == 1 else str(v)


def _fmt_access(acc) -> str:
    """``A[i, k]`` for arrays, bare ``nrm`` for 0-dim scalars."""
    return repr(acc) if acc.indices else acc.array


# ---------------------------------------------------------------------------
# AST-level: affine-ness and well-formedness (A001 / A002)
# ---------------------------------------------------------------------------


def analyze_ast(block) -> list[Diagnostic]:
    """Syntactic pre-pass over a front-end AST; exact source spans."""
    from ..frontend import lower as _lower
    from ..frontend.astnodes import (
        Assign,
        BinOp,
        Call,
        Compare,
        For,
        If,
        Num,
        Ref,
        Ternary,
        UnOp,
        Var,
    )

    diags: list[Diagnostic] = []
    try:
        loop_vars, arrays, written_bare, read_bare = _lower._collect_names(block)
    except _lower.LowerError as exc:
        return [
            Diagnostic(
                "A002",
                "error",
                str(exc),
                span=exc.span,
                hint="every use of an array must have the same number of"
                " subscripts",
            )
        ]
    scalars = set(written_bare)
    params = set(read_bare) - loop_vars - scalars - set(arrays)

    def classify(exc) -> str:
        msg = str(exc)
        return (
            "A001"
            if "non-affine" in msg or "non-integer" in msg
            else "A002"
        )

    def probe(e, what: str, hint: str) -> None:
        try:
            _lower._to_affine(e, loop_vars, params)
        except _lower.LowerError as exc:
            diags.append(
                Diagnostic(
                    classify(exc),
                    "error",
                    f"{what}: {exc}",
                    span=exc.span or getattr(e, "span", None),
                    hint=hint,
                )
            )

    def probe_refs(e) -> None:
        """Probe the subscripts of every array reference in an expression
        (the value positions themselves may be arbitrary arithmetic)."""
        if isinstance(e, Ref):
            for ix in e.indices:
                probe(
                    ix,
                    f"subscript of {e.array}",
                    "subscripts must be affine in the loop variables and"
                    " parameters",
                )
                probe_refs(ix)
        elif isinstance(e, (BinOp, Compare)):
            probe_refs(e.lhs)
            probe_refs(e.rhs)
        elif isinstance(e, UnOp):
            probe_refs(e.operand)
        elif isinstance(e, Call):
            for a in e.args:
                probe_refs(a)
        elif isinstance(e, Ternary):
            probe_refs(e.cond)
            probe_refs(e.then)
            probe_refs(e.other)
        elif isinstance(e, (Num, Var)):
            pass

    seen_labels: dict[str, object] = {}
    _STEP_OPS = {1: ("<", "<="), -1: (">", ">=")}

    def walk(items) -> None:
        for s in items:
            if isinstance(s, For):
                probe(
                    s.init,
                    f"lower bound of loop {s.var}",
                    "loop bounds must be affine",
                )
                probe(
                    s.bound,
                    f"upper bound of loop {s.var}",
                    "loop bounds must be affine",
                )
                probe_refs(s.init)
                probe_refs(s.bound)
                if s.cond_op not in _STEP_OPS[s.step]:
                    diags.append(
                        Diagnostic(
                            "A002",
                            "error",
                            f"loop on {s.var}: comparison {s.cond_op!r} is"
                            f" inconsistent with step {s.step:+d}"
                            " (the loop never terminates or never runs)",
                            span=s.span,
                            hint="increasing loops need < or <=, decreasing"
                            " loops > or >=",
                        )
                    )
                walk(s.body.items)
            elif isinstance(s, If):
                try:
                    _lower._compare_to_constraints(s.cond, loop_vars, params)
                except _lower.LowerError as exc:
                    diags.append(
                        Diagnostic(
                            classify(exc),
                            "error",
                            f"guard condition: {exc}",
                            span=exc.span or s.cond.span,
                            hint="guards must compare affine expressions"
                            " with <, <=, >, >= or ==",
                        )
                    )
                probe_refs(s.cond)
                walk(s.body.items)
            elif isinstance(s, Assign):
                if s.label:
                    if s.label in seen_labels:
                        diags.append(
                            Diagnostic(
                                "A002",
                                "error",
                                f"duplicate statement label {s.label!r}"
                                " (first defined at line"
                                f" {seen_labels[s.label]})",
                                span=s.span,
                                hint="statement labels must be unique",
                            )
                        )
                    else:
                        seen_labels[s.label] = (
                            s.span.line if s.span else "?"
                        )
                if isinstance(s.target, Ref):
                    for ix in s.target.indices:
                        probe(
                            ix,
                            f"subscript of {s.target.array}",
                            "subscripts must be affine in the loop"
                            " variables and parameters",
                        )
                        probe_refs(ix)
                probe_refs(s.value)

    walk(block.items)
    return diags


# ---------------------------------------------------------------------------
# IR structural validation (A002)
# ---------------------------------------------------------------------------


def pass_wellformed(ctx: AnalysisContext) -> list[Diagnostic]:
    diags = []
    by_name = {s.name: s for s in ctx.program.statements}
    for problem in validate_program(ctx.program):
        head = problem.split(":", 1)[0].split(" and ")[0].strip()
        stmt = by_name.get(head)
        diags.append(
            Diagnostic(
                "A002",
                "error",
                problem,
                stmt=stmt.name if stmt else "",
                span=stmt.span if stmt else None,
            )
        )
    return diags


# ---------------------------------------------------------------------------
# parameter assumptions via Fourier–Motzkin projection (A007, A006)
# ---------------------------------------------------------------------------


def _normalize(e: LinExpr) -> LinExpr:
    """Scale to coprime integer coefficients (canonical for dedup)."""
    vals = [Fraction(c) for c in e.coeffs.values()] + [Fraction(e.const)]
    denom_lcm = 1
    for v in vals:
        denom_lcm = denom_lcm * v.denominator // gcd(denom_lcm, v.denominator)
    nums = [abs(int(v * denom_lcm)) for v in vals if v != 0]
    g = 0
    for n in nums:
        g = gcd(g, n)
    return e * Fraction(denom_lcm, g or 1)


def _fmt_cmp(e: LinExpr, kind: str) -> str:
    """Human form of ``e >= 0`` / ``e == 0`` with negatives moved to the
    right-hand side, so ``N - 2 >= 0`` prints as ``N >= 2``."""

    def side(terms: list[tuple[str, Fraction]], const: Fraction) -> str:
        parts = [v if c == 1 else f"{_fmt_frac(c)}*{v}" for v, c in terms]
        if const != 0 or not parts:
            parts.append(_fmt_frac(const))
        return " + ".join(parts)

    pos = sorted((v, Fraction(c)) for v, c in e.coeffs.items() if c > 0)
    neg = sorted((v, -Fraction(c)) for v, c in e.coeffs.items() if c < 0)
    const = Fraction(e.const)
    op = "==" if kind == "==" else ">="
    lhs = side(pos, const if const > 0 else Fraction(0))
    rhs = side(neg, -const if const < 0 else Fraction(0))
    return f"{lhs} {op} {rhs}"


def pass_assumptions(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    seen: dict[tuple, tuple[LinExpr, str, list[str]]] = {}
    for st in ctx.program.statements:
        shadow = st.domain()
        for d in reversed(shadow.dims):
            shadow = shadow.eliminate(d)
        infeasible = False
        local: list[tuple[LinExpr, str]] = []
        for c in shadow.constraints:
            if not c.expr.variables():
                if (c.kind == "==" and c.expr.const != 0) or (
                    c.kind == ">=" and c.expr.const < 0
                ):
                    infeasible = True
            else:
                local.append((c.expr, c.kind))
        if infeasible:
            diags.append(
                Diagnostic(
                    "A006",
                    "warning",
                    f"statement {st.name} has an empty iteration domain for"
                    " every parameter value (it can never execute)",
                    stmt=st.name,
                    span=st.span,
                    hint="remove the statement or fix its loop bounds/guards",
                )
            )
            continue
        for e, kind in local:
            n = _normalize(e)
            key = (kind, Fraction(n.const), tuple(sorted(n.coeffs.items())))
            seen.setdefault(key, (n, kind, []))[2].append(st.name)
    for n, kind, stmts in seen.values():
        names = ", ".join(dict.fromkeys(stmts[:4]))
        if len(set(stmts)) > 4:
            names += ", …"
        diags.append(
            Diagnostic(
                "A007",
                "info",
                f"assumes {_fmt_cmp(n, kind)} (required for {names}"
                " to execute at all)",
                stmt=stmts[0],
                span=ctx.program.statement(stmts[0]).span,
            )
        )
    return diags


# ---------------------------------------------------------------------------
# sequential replay: uninitialized reads, overwrites, dead code
# (A003 / A005 / A006)
# ---------------------------------------------------------------------------


def pass_dataflow(ctx: AnalysisContext) -> list[Diagnostic]:
    prog, params = ctx.program, ctx.params
    order = sequential_schedule(prog, params)
    stmts = {s.name: s for s in prog.statements}
    workspace = ctx.workspace
    last_write: dict[tuple, tuple[str, tuple[int, ...]]] = {}
    unread: set[tuple] = set()
    stats = {s.name: [0, 0] for s in prog.statements}  # [written, observed]
    flagged_uninit: set[tuple[str, int]] = set()
    flagged_pairs: set[tuple[str, str]] = set()
    uninit: list[Diagnostic] = []
    overwrites: list[Diagnostic] = []
    for name, point in order:
        s = stmts[name]
        env = dict(params)
        env.update(zip(s.dims, point))
        for slot, acc in enumerate(s.reads):
            cell = acc.eval(env)
            if cell in last_write:
                if cell in unread:
                    unread.discard(cell)
                    stats[last_write[cell][0]][1] += 1
            elif cell[0] in workspace and (name, slot) not in flagged_uninit:
                flagged_uninit.add((name, slot))
                what = "scalar" if not cell[1] else "array element"
                uninit.append(
                    Diagnostic(
                        "A003",
                        "error",
                        f"{_inst(s, point)} reads local {what} {_fmt_access(acc)}"
                        " before any write to it (uninitialized)",
                        stmt=name,
                        span=acc.span or s.span,
                        hint=f"initialize {cell[0]!r} before this statement"
                        " (a read-only name would be a parameter or input"
                        " array instead)",
                    )
                )
        for acc in s.writes:
            cell = acc.eval(env)
            if cell in unread:
                prev_stmt, prev_pt = last_write[cell]
                pair = (prev_stmt, name)
                if pair not in flagged_pairs:
                    flagged_pairs.add(pair)
                    overwrites.append(
                        Diagnostic(
                            "A005",
                            "warning",
                            f"value of {_fmt_access(acc)} written by"
                            f" {_inst(stmts[prev_stmt], prev_pt)} is"
                            f" overwritten by {_inst(s, point)} before any"
                            " read observes it",
                            stmt=name,
                            span=acc.span or s.span,
                            hint="the earlier write is a dead store; if two"
                            " unordered instances write the same cell this"
                            " is a reordering hazard for tiled schedules",
                        )
                    )
            last_write[cell] = (name, point)
            unread.add(cell)
            stats[name][0] += 1
    for cell in unread:
        if cell[0] in ctx.live_out:
            stats[last_write[cell][0]][1] += 1
    dead: list[Diagnostic] = []
    for s in prog.statements:
        written, observed = stats[s.name]
        if written and not observed:
            dead.append(
                Diagnostic(
                    "A006",
                    "warning",
                    f"none of the {written} value(s) written by {s.name}"
                    f" at {dict(params)} is ever read or live-out",
                    stmt=s.name,
                    span=s.span,
                    hint="dead code: remove the statement, or mark its"
                    " array as a program output",
                )
            )
    return uninit + overwrites + dead


# ---------------------------------------------------------------------------
# polyhedral bounds checking (A004)
# ---------------------------------------------------------------------------


def pass_bounds(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for st in ctx.program.statements:
        dom = st.domain()
        for kind, accs in (("read", st.reads), ("write", st.writes)):
            for acc in accs:
                extents = ctx.shapes.get(acc.array)
                for d, idx in enumerate(acc.indices):
                    # below: domain ∧ idx <= -1
                    checks = [("below", (idx * -1) - 1, None)]
                    if extents is not None and d < len(extents):
                        # above: domain ∧ idx >= extent
                        checks.append(("above", idx - extents[d], extents[d]))
                    for side, vexpr, ext in checks:
                        viol = dom.with_constraints([Constraint(vexpr, ">=")])
                        pt = viol.sample(ctx.params)
                        if pt is None:
                            continue
                        env = dict(ctx.params)
                        env.update(zip(st.dims, pt))
                        val = _fmt_frac(idx.eval(env))
                        if side == "below":
                            why = f"index #{d + 1} = {val} is negative"
                            hint = (
                                "shift the subscript or tighten the loop"
                                " bounds so every index stays >= 0"
                            )
                        else:
                            lim = _fmt_frac(ext.eval(ctx.params))
                            why = (
                                f"index #{d + 1} = {val} exceeds the"
                                f" declared extent {ext!r} = {lim}"
                            )
                            hint = (
                                "tighten the loop bounds or grow the"
                                " declared array shape"
                            )
                        diags.append(
                            Diagnostic(
                                "A004",
                                "error",
                                f"{kind} {_fmt_access(acc)} out of bounds at"
                                f" {_inst(st, pt)}: {why}",
                                stmt=st.name,
                                span=acc.span or st.span,
                                hint=hint,
                            )
                        )
    return diags


# ---------------------------------------------------------------------------
# hourglass applicability (A008)
# ---------------------------------------------------------------------------


def pass_hourglass(ctx: AnalysisContext) -> list[Diagnostic]:
    from ..bounds.hourglass import HourglassDetectionError, detect_hourglass

    prog = ctx.program
    truncated = 0
    if ctx.dominant is not None:
        if not any(st.name == ctx.dominant for st in prog.statements):
            return [
                Diagnostic(
                    "A002",
                    "error",
                    f"// dominant: names unknown statement"
                    f" {ctx.dominant!r} (statements:"
                    f" {', '.join(st.name for st in prog.statements)})",
                )
            ]
        candidates = [ctx.dominant]
    else:
        # decreasing instance count; cap the search — detection is the
        # analyzer's most expensive decision procedure
        sized = sorted(
            ((st.domain().count(ctx.params), st.name) for st in
             prog.statements if st.reads),
            key=lambda t: -t[0],
        )
        candidates = [name for _, name in sized[:6]]
        truncated = len(sized) - len(candidates)
    if not candidates:
        return [
            Diagnostic(
                "A008",
                "info",
                "no statement with reads: nothing for the hourglass"
                " detection to target; only the classical bound applies",
            )
        ]
    sample = {k: max(v, 4) * 256 for k, v in ctx.params.items()}
    pat = None
    first_reason: tuple[str, str] | None = None
    for target in candidates:
        try:
            pat = detect_hourglass(prog, target, ctx.params, sample)
            break
        except HourglassDetectionError as exc:
            reason = str(exc)
            if reason.startswith(f"{target}: "):
                reason = reason[len(target) + 2 :]
            if first_reason is None:
                first_reason = (target, reason)
        except Exception as exc:  # noqa: BLE001 - the analyzer must not crash
            return [
                Diagnostic(
                    "A008",
                    "info",
                    f"hourglass analysis inconclusive on {target}:"
                    f" {type(exc).__name__}: {exc}",
                    stmt=target,
                    span=prog.statement(target).span,
                )
            ]
    if pat is None:
        target, reason = first_reason
        note = ""
        if truncated:
            note = (
                f" (search truncated to the {len(candidates)} largest"
                f" reading statements; {truncated} more not tried — name"
                " one with // dominant: to target it)"
            )
        return [
            Diagnostic(
                "A008",
                "info",
                f"no hourglass pattern on {target}: {reason}; the classical"
                f" K-partition bound applies{note}",
                stmt=target,
                span=prog.statement(target).span,
                hint="the tightened bound needs a self-update read (temporal"
                " chain) plus a reduction/broadcast value of parametric"
                " width (paper §3.2)",
            )
        ]
    st = prog.statement(pat.stmt)
    msg = (
        f"hourglass pattern on {pat.stmt}: temporal dims"
        f" {', '.join(pat.temporal)}; reduction {', '.join(pat.reduction)};"
        f" neutral {', '.join(pat.neutral) or '(none)'};"
        f" width Wmin = {pat.width_min!r}, Wmax = {pat.width_max!r}"
    )
    if pat.parametric_width:
        msg += " — parametric width: the tightened bound (paper §4) applies"
    else:
        msg += (
            " — constant minimum width: the loop-splitting derivation"
            " (Theorem 9) applies instead of the direct bound"
        )
    return [
        Diagnostic("A008", "info", msg, stmt=pat.stmt, span=st.span)
    ]


#: program-level passes in execution order (name, fn, needs_clean_structure)
PROGRAM_PASSES: tuple[tuple[str, object, bool], ...] = (
    ("wellformed", pass_wellformed, False),
    ("assumptions", pass_assumptions, False),
    ("dataflow", pass_dataflow, True),
    ("bounds", pass_bounds, True),
    ("hourglass", pass_hourglass, True),
    ("deps", pass_deps, True),
)
